"""Model-guided online imitation learning policy (Sec. IV-A3).

The policy starts from an offline-trained neural-network IL policy and from
offline-bootstrapped power/performance models.  At runtime, after every
snippet:

1. the online models are updated with the observed counters (Sec. III-B);
2. the runtime Oracle evaluates candidate configurations in the neighbourhood
   of the current configuration and selects the predicted-best one;
3. the (counter features, predicted-best configuration) pair is appended to
   the aggregation buffer;
4. when the buffer is full, the neural-network policy is updated with
   back-propagation on the buffered data and the buffer is reset.

The actual control decision applied to the system is the policy's own
prediction — imitation learning updates the policy toward the runtime Oracle
rather than acting on the Oracle directly, which keeps the runtime decision
cost at a single forward pass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.policy import DRMPolicy, FleetDecisions
from repro.core.buffer import AggregationBuffer
from repro.core.offline_il import OfflineILPolicy
from repro.core.runtime_oracle import RuntimeOracle
from repro.ml.mlp import FleetMLPStack, MLPClassifier
from repro.ml.rls import RecursiveLeastSquares
from repro.ml.scaling import StandardScaler
from repro.models.performance import (
    CpuPerformanceModel,
    fleet_update_performance_models,
)
from repro.models.power import CpuPowerModel, fleet_update_power_models
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult
from repro.soc.snippet import Snippet


def _platform_tables_match(platform, space: ConfigurationSpace) -> bool:
    """True when ``platform`` carries the same OPP values as the space's.

    The fleet-batched model paths build candidate features from the
    *space's* struct-of-arrays tables while each device's scalar path
    reads its own model's platform; bitwise equivalence therefore needs
    the OPP voltage/frequency values (not the objects — isolated devices
    deep-copy their platforms) to match exactly.
    """
    reference = space.platform
    if platform is reference:
        return True
    for name in space.cluster_order:
        ours = platform.cluster(name)
        theirs = reference.cluster(name)
        if len(ours.opps) != len(theirs.opps):
            return False
        for opp_a, opp_b in zip(ours.opps, theirs.opps):
            if (opp_a.voltage_v != opp_b.voltage_v
                    or opp_a.frequency_hz != opp_b.frequency_hz):
                return False
    return True


class OnlineILPolicy(DRMPolicy):
    """Online-adaptive imitation-learning DRM policy."""

    def __init__(
        self,
        space: ConfigurationSpace,
        offline_policy: OfflineILPolicy,
        runtime_oracle: RuntimeOracle,
        buffer_capacity: int = 100,
        update_epochs: int = 30,
        min_model_updates: int = 3,
    ) -> None:
        super().__init__(space)
        if not isinstance(offline_policy.classifier, MLPClassifier):
            raise TypeError(
                "OnlineILPolicy requires an MLP-based offline policy "
                "(the paper's online policy is a neural network updated with "
                "back-propagation)"
            )
        if update_epochs < 1:
            raise ValueError("update_epochs must be >= 1")
        self.offline_policy = offline_policy
        self.runtime_oracle = runtime_oracle
        self.buffer = AggregationBuffer(capacity=buffer_capacity)
        self.update_epochs = int(update_epochs)
        self.min_model_updates = int(min_model_updates)
        self.n_policy_updates = 0
        self.n_supervision_labels = 0
        self.n_rejected_decisions = 0
        self.n_rejected_updates = 0
        self._last_runtime_label: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def classifier(self) -> MLPClassifier:
        classifier = self.offline_policy.classifier
        assert isinstance(classifier, MLPClassifier)
        return classifier

    def _scaled(self, counters: PerformanceCounters) -> np.ndarray:
        return self.offline_policy.scaler.transform(
            counters.feature_vector().reshape(1, -1)
        )

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None:
            return self.current
        if not counters.is_valid():
            # Degradation gate: corrupted telemetry (NaN dropout, saturated
            # sensors) must reach neither the scaler/classifier forward nor
            # the supervision path — hold the last-safe configuration.
            self.n_rejected_decisions += 1
            return self.current
        scaled = self._scaled(counters)

        # Model-guided supervision: query the runtime Oracle once its online
        # models have seen enough data to be meaningful.
        if self.runtime_oracle.n_model_updates >= self.min_model_updates:
            best_config, _ = self.runtime_oracle.best_configuration(
                counters, self.current
            )
            label = self.space.index_of(best_config)
            self._last_runtime_label = label
            self.n_supervision_labels += 1
            became_full = self.buffer.insert(scaled.ravel(), label)
            if became_full:
                self._update_policy()

        # The applied decision is the (possibly just updated) policy's own.
        predicted_index = int(self.classifier.predict(scaled)[0])
        predicted_index = max(0, min(len(self.space) - 1, predicted_index))
        self.current = self.space[predicted_index]
        return self.current

    def _update_policy(self) -> None:
        features, labels = self.buffer.drain()
        self.classifier.partial_fit(features, labels, epochs=self.update_epochs)
        self.n_policy_updates += 1

    def observe(self, result: SnippetResult) -> None:
        super().observe(result)
        if not result.counters.is_valid():
            # Skip the model update: one NaN/garbage observation would
            # permanently poison the RLS precision tensors.  The executed
            # configuration is still tracked (super().observe) so the
            # policy resumes cleanly from the next healthy step.
            self.n_rejected_updates += 1
            return
        self.runtime_oracle.update_models(result.counters, result.configuration)

    # ------------------------------------------------------------------ #
    # Fleet batching (cross-device batched learning)
    # ------------------------------------------------------------------ #
    def _fleet_models_batchable(self) -> bool:
        """Shared preconditions of the batched decide and observe paths.

        Exact types only: a subclass overriding any model behaviour must
        fall back to scalar stepping rather than silently replaying the
        base arithmetic.  The platform value check makes the space's
        struct-of-arrays tables bitwise interchangeable with each model's
        own per-OPP tables.
        """
        oracle = self.runtime_oracle
        if type(oracle) is not RuntimeOracle:
            return False
        if oracle.space is not self.space:
            return False
        if type(oracle.power_model) is not CpuPowerModel:
            return False
        if type(oracle.performance_model) is not CpuPerformanceModel:
            return False
        for rls in (oracle.power_model.rls, oracle.performance_model.rls):
            if type(rls) is not RecursiveLeastSquares or not rls.fit_intercept:
                return False
        if set(self.space.cluster_order) != {"big", "little"}:
            return False
        if not _platform_tables_match(oracle.power_model.platform, self.space):
            return False
        if not _platform_tables_match(
                oracle.performance_model.platform, self.space):
            return False
        return True

    def fleet_decide_key(self) -> Optional[Tuple]:
        if type(self) is not OnlineILPolicy:
            return None
        if not self._fleet_models_batchable():
            return None
        oracle = self.runtime_oracle
        if oracle.mode != "batch":
            return None
        classifier = self.offline_policy.classifier
        if type(classifier) is not MLPClassifier or classifier._core is None:
            return None
        if classifier.classes_ is None or not np.array_equal(
                classifier.classes_, np.arange(len(self.space))):
            # The batched path treats argmax positions as space indices;
            # any other class registration must decide scalar.
            return None
        scaler = self.offline_policy.scaler
        if type(scaler) is not StandardScaler or scaler.mean_ is None:
            return None
        core = classifier._core
        # Content key, not id(space): process-stable and GC-safe, so
        # content-equal spaces group together and sharded fleets key
        # identically across worker processes.
        return ("OnlineILPolicy", self.space.content_key(),
                oracle.neighborhood_radius,
                oracle.metric, tuple(core.layer_sizes), core.activation_name)

    def fleet_observe_key(self) -> Optional[Tuple]:
        if type(self) is not OnlineILPolicy:
            return None
        if not self._fleet_models_batchable():
            return None
        return ("OnlineILPolicy-observe", self.space.content_key())

    @staticmethod
    def _members_match(stored: Optional[Tuple],
                       policies: Sequence["OnlineILPolicy"]) -> bool:
        """Whether ``stored`` is exactly the current member tuple.

        Membership is compared by object identity against a tuple that
        *holds strong references* — unlike the old ``id()``-tuple
        comparison, a policy that was garbage-collected and whose address
        was reused by a new allocation can never pass, because the stored
        tuple keeps the original object alive for the ``is`` check.
        """
        return (stored is not None and len(stored) == len(policies)
                and all(a is b for a, b in zip(stored, policies)))

    @staticmethod
    def _fleet_adopt(policies: Sequence["OnlineILPolicy"],
                     state: dict) -> dict:
        """(Re)build the group's decide-side stacks when membership shifts.

        Adoption deduplicates shared mutable state: two policies sharing
        any learning object (classifier, core, generator, scaler, buffer,
        oracle, model, RLS estimator) would interleave their updates in
        the scalar sequential order, which a batched pass cannot
        reproduce — those rows are pinned to the scalar fallback.  The
        remaining rows get one :class:`~repro.ml.mlp.FleetMLPStack` plus
        stacked scaler statistics.  Cheap identity revalidation runs every
        step (cores replaced by ``fit()``, scaler statistics rebound by
        ``partial_fit``); a mismatch triggers full re-adoption.

        Ownership is computed over the member objects themselves (dict
        keys holding strong references), never over ``id()`` values:
        every object participating in the dedup is simultaneously alive
        for the duration of the pass, and the stored member tuple keeps
        the adopted policies alive across steps, so a GC'd-and-reallocated
        object can never alias into the wrong row.
        """
        if OnlineILPolicy._members_match(state.get("members"), policies):
            fresh = all(
                policies[row].classifier._core is core
                for row, core in zip(state["batched_rows"], state["cores"])
            ) and all(
                policies[row].offline_policy.scaler.mean_ is mean_ref
                and policies[row].offline_policy.scaler.var_ is var_ref
                for row, (mean_ref, var_ref)
                in zip(state["batched_rows"], state["scaler_refs"])
            )
            if fresh:
                return state
        owners: Dict[Any, set] = {}
        for row, policy in enumerate(policies):
            for obj in (
                policy,
                policy.offline_policy,
                policy.classifier,
                policy.classifier._core,
                policy.classifier.rng,
                policy.offline_policy.scaler,
                policy.buffer,
                policy.runtime_oracle,
                policy.runtime_oracle.power_model,
                policy.runtime_oracle.performance_model,
                policy.runtime_oracle.power_model.rls,
                policy.runtime_oracle.performance_model.rls,
            ):
                if obj is not None:
                    owners.setdefault(obj, set()).add(row)
        scalar_rows = set()
        for rows in owners.values():
            if len(rows) > 1:
                scalar_rows.update(rows)
        for row, policy in enumerate(policies):
            if row in scalar_rows:
                continue
            classifier = policy.classifier
            scaler = policy.offline_policy.scaler
            if (classifier._core is None or classifier.classes_ is None
                    or not np.array_equal(classifier.classes_,
                                          np.arange(len(policy.space)))
                    or scaler.mean_ is None or scaler.var_ is None):
                scalar_rows.add(row)
        batched_rows = [row for row in range(len(policies))
                        if row not in scalar_rows]
        state["members"] = tuple(policies)
        state["scalar_rows"] = scalar_rows
        state["batched_rows"] = batched_rows
        # Rows whose supervision gate has already opened; the gate
        # (``n_model_updates >= min_model_updates``) is monotone for a
        # fixed policy object, so membership never needs revisiting until
        # adoption rebuilds this state.
        state["supervised_known"] = set()
        state["stack_row_of"] = {row: k for k, row in enumerate(batched_rows)}
        if batched_rows:
            batched = [policies[row] for row in batched_rows]
            state["stack"] = FleetMLPStack(
                [policy.classifier for policy in batched])
            state["cores"] = [policy.classifier._core for policy in batched]
            state["scaler_refs"] = [
                (policy.offline_policy.scaler.mean_,
                 policy.offline_policy.scaler.var_)
                for policy in batched
            ]
            state["mean"] = np.stack(
                [policy.offline_policy.scaler.mean_ for policy in batched])
            state["var"] = np.stack(
                [policy.offline_policy.scaler.var_ for policy in batched])
            state["eps"] = np.array(
                [policy.offline_policy.scaler.epsilon for policy in batched])
            # The scaler statistics are frozen between adoptions (rebinds
            # trigger re-adoption above), so the per-step denominator
            # ``sqrt(var + eps)`` is a constant — precompute it once.
            state["scale_denom"] = np.sqrt(
                state["var"] + state["eps"][:, None])
        else:
            state["stack"] = None
            state["cores"] = []
            state["scaler_refs"] = []
        return state

    @staticmethod
    def _fleet_update_policies(policies: Sequence["OnlineILPolicy"],
                               flush_rows: Sequence[int],
                               state: dict) -> None:
        """Flush full aggregation buffers, batching same-shape trainings.

        Devices whose buffers filled on the same lockstep step and share
        every training hyper-parameter (sample count, minibatch size,
        epochs, learning rate, momentum, l2) train as one stacked
        :meth:`~repro.ml.mlp.FleetMLPStack.partial_fit_rows` call;
        singleton groups take the scalar :meth:`_update_policy` unchanged.
        Training order across devices is irrelevant — adoption guaranteed
        the classifiers are distinct objects.
        """
        groups: Dict[Tuple, List[int]] = {}
        for row in flush_rows:
            policy = policies[row]
            core = policy.classifier._core
            key = (len(policy.buffer), policy.classifier.batch_size,
                   policy.update_epochs, core.learning_rate, core.momentum,
                   core.l2)
            groups.setdefault(key, []).append(row)
        stack = state["stack"]
        stack_row_of = state["stack_row_of"]
        for members in groups.values():
            if len(members) == 1:
                policies[members[0]]._update_policy()
                continue
            datasets: List[np.ndarray] = []
            encoded: List[np.ndarray] = []
            for row in members:
                policy = policies[row]
                features, labels = policy.buffer.drain()
                datasets.append(features)
                encoded.append(policy.classifier._encode(labels))
                policy.n_policy_updates += 1
            stack.partial_fit_rows(
                np.array([stack_row_of[row] for row in members],
                         dtype=np.intp),
                datasets, encoded, policies[members[0]].update_epochs,
            )

    @staticmethod
    def fleet_decide(
        policies: Sequence[DRMPolicy],
        counters: Sequence[Optional[PerformanceCounters]],
        snippets: Sequence[Snippet],
        group_state: dict,
    ) -> FleetDecisions:
        """Batched online-IL decide for one lockstep group.

        Mirrors the scalar :meth:`decide` per device, fleet-wide: one
        stacked scaler transform, one fleet-wide runtime-Oracle candidate
        sweep (:meth:`~repro.core.runtime_oracle.RuntimeOracle
        .fleet_best_indices`) for the supervision-eligible devices, per
        device buffer inserts in group order, stacked policy training for
        simultaneously full buffers, and one stacked classifier forward
        for the applied decisions.  Rows with no counters yet, rows whose
        current configuration left the space, and rows pinned scalar by
        adoption take the scalar :meth:`decide` row-wise.
        """
        space = policies[0].space
        state = OnlineILPolicy._fleet_adopt(policies, group_state)
        out_configs: List[Optional[SoCConfiguration]] = [None] * len(policies)
        out_indices: List[Optional[int]] = [None] * len(policies)
        scalar_rows = state["scalar_rows"]
        live: List[int] = []
        live_current: List[int] = []
        for i, policy in enumerate(policies):
            if counters[i] is None:
                # OnlineILPolicy.decide(None) returns self.current as-is.
                current = policy.current
                out_configs[i] = current
                out_indices[i] = space._index.get(current)
                continue
            if not counters[i].is_valid():
                # Scalar decide applies the degradation gate (hold the
                # last-safe configuration, count the rejection) — invalid
                # telemetry must not enter the stacked transforms.
                out_configs[i] = policy.decide(counters[i])
                out_indices[i] = space._index.get(out_configs[i])
                continue
            if i in scalar_rows:
                out_configs[i] = policy.decide(counters[i])
                out_indices[i] = space._index.get(out_configs[i])
                continue
            memo = policy.__dict__.get("_fleet_state")
            if memo is not None and memo[0] is policy.current:
                live.append(i)
                live_current.append(memo[1])
                continue
            index = space._index.get(policy.current)
            if index is None:
                # Current configuration wandered outside the space (e.g.
                # a foreign reset): the scalar sweep path handles it.
                out_configs[i] = policy.decide(counters[i])
                out_indices[i] = space._index.get(out_configs[i])
            else:
                live.append(i)
                live_current.append(index)
        if not live:
            return out_configs, out_indices  # type: ignore[return-value]

        current_rows = np.array(live_current, dtype=np.intp)
        stack_row_of = state["stack_row_of"]
        stack_rows = np.array([stack_row_of[i] for i in live], dtype=np.intp)
        feature_rows = np.stack(
            [counters[i].feature_vector() for i in live])
        if len(live) == len(state["batched_rows"]):
            mean, denom = state["mean"], state["scale_denom"]
        else:
            mean = state["mean"][stack_rows]
            denom = state["scale_denom"][stack_rows]
        scaled = (feature_rows - mean) / denom

        # Model-guided supervision for devices whose online models have
        # seen enough data (per-row gate, like the scalar path).  Update
        # counts only grow, so rows already past the gate skip the
        # property-chain re-read.
        known = state["supervised_known"]
        supervised: List[int] = []
        for k, i in enumerate(live):
            if i in known:
                supervised.append(k)
                continue
            policy = policies[i]
            if (policy.runtime_oracle.n_model_updates  # type: ignore[attr-defined]
                    >= policy.min_model_updates):  # type: ignore[attr-defined]
                known.add(i)
                supervised.append(k)
        if supervised:
            oracles = [policies[live[k]].runtime_oracle  # type: ignore[attr-defined]
                       for k in supervised]
            labels = RuntimeOracle.fleet_best_indices(
                oracles,
                [counters[live[k]] for k in supervised],
                current_rows[np.array(supervised, dtype=np.intp)],
            )
            flush_rows: List[int] = []
            for k, label in zip(supervised, labels.tolist()):
                policy = policies[live[k]]
                policy._last_runtime_label = label  # type: ignore[attr-defined]
                policy.n_supervision_labels += 1  # type: ignore[attr-defined]
                if policy.buffer.insert(scaled[k], label):  # type: ignore[attr-defined]
                    flush_rows.append(live[k])
            if flush_rows:
                OnlineILPolicy._fleet_update_policies(
                    policies, flush_rows, state)

        # The applied decision is each (possibly just updated) policy's
        # own prediction; classes_ == arange(len(space)) (adoption
        # invariant), so the argmax position IS the space index.
        encoded = state["stack"].predict_encoded(stack_rows, scaled)
        configs = space._configs
        last_index = len(space) - 1
        for k, i in enumerate(live):
            policy = policies[i]
            predicted = int(encoded[k])
            predicted = max(0, min(last_index, predicted))
            config = configs[predicted]
            policy.current = config
            policy._fleet_state = (config, predicted)  # type: ignore[attr-defined]
            out_configs[i] = config
            out_indices[i] = predicted
        return out_configs, out_indices  # type: ignore[return-value]

    @staticmethod
    def fleet_observe(
        policies: Sequence[DRMPolicy],
        steps: Sequence[object],
        results: Sequence[SnippetResult],
        group_state: dict,
    ) -> None:
        """Batched online-IL observe: stacked power/performance updates.

        Each device's scalar :meth:`observe` is two rank-1 RLS updates at
        the executed configuration; the fleet collapses them into one
        :func:`~repro.models.power.fleet_update_power_models` plus one
        :func:`~repro.models.performance.fleet_update_performance_models`
        call over the devices' struct-of-arrays configuration rows.  Rows
        pinned scalar by adoption (shared model state) or lacking a
        configuration index observe scalar, row-wise.
        """
        space = policies[0].space
        if not OnlineILPolicy._members_match(
                group_state.get("observe_members"), policies):
            # Ownership over the objects themselves (strong refs), never
            # id() values — see _fleet_adopt for the aliasing rationale.
            owners: Dict[Any, set] = {}
            for row, policy in enumerate(policies):
                for obj in (
                    policy,
                    policy.runtime_oracle,  # type: ignore[attr-defined]
                    policy.runtime_oracle.power_model,  # type: ignore[attr-defined]
                    policy.runtime_oracle.performance_model,  # type: ignore[attr-defined]
                    policy.runtime_oracle.power_model.rls,  # type: ignore[attr-defined]
                    policy.runtime_oracle.performance_model.rls,  # type: ignore[attr-defined]
                ):
                    if obj is not None:
                        owners.setdefault(obj, set()).add(row)
            scalar_rows = set()
            for rows in owners.values():
                if len(rows) > 1:
                    scalar_rows.update(rows)
            group_state["observe_members"] = tuple(policies)
            group_state["observe_scalar_rows"] = scalar_rows
        scalar_rows = group_state["observe_scalar_rows"]
        live: List[int] = []
        live_indices: List[int] = []
        for i, policy in enumerate(policies):
            index = getattr(steps[i], "configuration_index", None)
            if (i in scalar_rows or index is None
                    or not results[i].counters.is_valid()):
                # Scalar observe also applies the degradation gate, so
                # invalid telemetry never reaches the stacked RLS updates.
                policy.observe(results[i])
                continue
            config = results[i].configuration
            policy.current = config
            policy._fleet_state = (config, index)  # type: ignore[attr-defined]
            live.append(i)
            live_indices.append(index)
        if not live:
            return
        candidates = space.soa_view().gather(
            np.array(live_indices, dtype=np.intp))
        counters_list = [results[i].counters for i in live]
        fleet_update_power_models(
            [policies[i].runtime_oracle.power_model  # type: ignore[attr-defined]
             for i in live],
            counters_list, candidates,
            rls_state=group_state.setdefault("power_rls_state", {}))
        fleet_update_performance_models(
            [policies[i].runtime_oracle.performance_model  # type: ignore[attr-defined]
             for i in live],
            counters_list, candidates,
            rls_state=group_state.setdefault("perf_rls_state", {}))

    # ------------------------------------------------------------------ #
    def diagnostics(self) -> Dict[str, float]:
        """Counters describing the online adaptation activity."""
        return {
            "policy_updates": float(self.n_policy_updates),
            "supervision_labels": float(self.n_supervision_labels),
            "rejected_decisions": float(self.n_rejected_decisions),
            "rejected_updates": float(self.n_rejected_updates),
            "buffer_fill": float(len(self.buffer)),
            "buffer_capacity": float(self.buffer.capacity),
            "buffer_storage_bytes": float(self.buffer.storage_bytes()),
            "model_updates": float(self.runtime_oracle.n_model_updates),
            "policy_parameters": float(self.classifier.parameter_count()),
        }
