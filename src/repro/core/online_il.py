"""Model-guided online imitation learning policy (Sec. IV-A3).

The policy starts from an offline-trained neural-network IL policy and from
offline-bootstrapped power/performance models.  At runtime, after every
snippet:

1. the online models are updated with the observed counters (Sec. III-B);
2. the runtime Oracle evaluates candidate configurations in the neighbourhood
   of the current configuration and selects the predicted-best one;
3. the (counter features, predicted-best configuration) pair is appended to
   the aggregation buffer;
4. when the buffer is full, the neural-network policy is updated with
   back-propagation on the buffered data and the buffer is reset.

The actual control decision applied to the system is the policy's own
prediction — imitation learning updates the policy toward the runtime Oracle
rather than acting on the Oracle directly, which keeps the runtime decision
cost at a single forward pass.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.buffer import AggregationBuffer
from repro.core.offline_il import OfflineILPolicy
from repro.core.runtime_oracle import RuntimeOracle
from repro.ml.mlp import MLPClassifier
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult


class OnlineILPolicy(DRMPolicy):
    """Online-adaptive imitation-learning DRM policy."""

    def __init__(
        self,
        space: ConfigurationSpace,
        offline_policy: OfflineILPolicy,
        runtime_oracle: RuntimeOracle,
        buffer_capacity: int = 100,
        update_epochs: int = 30,
        min_model_updates: int = 3,
    ) -> None:
        super().__init__(space)
        if not isinstance(offline_policy.classifier, MLPClassifier):
            raise TypeError(
                "OnlineILPolicy requires an MLP-based offline policy "
                "(the paper's online policy is a neural network updated with "
                "back-propagation)"
            )
        if update_epochs < 1:
            raise ValueError("update_epochs must be >= 1")
        self.offline_policy = offline_policy
        self.runtime_oracle = runtime_oracle
        self.buffer = AggregationBuffer(capacity=buffer_capacity)
        self.update_epochs = int(update_epochs)
        self.min_model_updates = int(min_model_updates)
        self.n_policy_updates = 0
        self.n_supervision_labels = 0
        self._last_runtime_label: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def classifier(self) -> MLPClassifier:
        classifier = self.offline_policy.classifier
        assert isinstance(classifier, MLPClassifier)
        return classifier

    def _scaled(self, counters: PerformanceCounters) -> np.ndarray:
        return self.offline_policy.scaler.transform(
            counters.feature_vector().reshape(1, -1)
        )

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None:
            return self.current
        scaled = self._scaled(counters)

        # Model-guided supervision: query the runtime Oracle once its online
        # models have seen enough data to be meaningful.
        if self.runtime_oracle.n_model_updates >= self.min_model_updates:
            best_config, _ = self.runtime_oracle.best_configuration(
                counters, self.current
            )
            label = self.space.index_of(best_config)
            self._last_runtime_label = label
            self.n_supervision_labels += 1
            became_full = self.buffer.insert(scaled.ravel(), label)
            if became_full:
                self._update_policy()

        # The applied decision is the (possibly just updated) policy's own.
        predicted_index = int(self.classifier.predict(scaled)[0])
        predicted_index = max(0, min(len(self.space) - 1, predicted_index))
        self.current = self.space[predicted_index]
        return self.current

    def _update_policy(self) -> None:
        features, labels = self.buffer.drain()
        self.classifier.partial_fit(features, labels, epochs=self.update_epochs)
        self.n_policy_updates += 1

    def observe(self, result: SnippetResult) -> None:
        super().observe(result)
        self.runtime_oracle.update_models(result.counters, result.configuration)

    # ------------------------------------------------------------------ #
    def diagnostics(self) -> Dict[str, float]:
        """Counters describing the online adaptation activity."""
        return {
            "policy_updates": float(self.n_policy_updates),
            "supervision_labels": float(self.n_supervision_labels),
            "buffer_fill": float(len(self.buffer)),
            "buffer_capacity": float(self.buffer.capacity),
            "buffer_storage_bytes": float(self.buffer.storage_bytes()),
            "model_updates": float(self.runtime_oracle.n_model_updates),
            "policy_parameters": float(self.classifier.parameter_count()),
        }
