"""Persistent, content-addressed on-disk store for Oracle entries.

The in-memory :class:`~repro.core.oracle.OracleCache` dies with its process,
so the ``--jobs N`` seed fan-out and every fresh CLI invocation used to
re-run identical exhaustive Oracle sweeps.  The :class:`OracleStore` makes
Oracle construction a compute-once artifact: entries are pickled one file
("shard") per content digest under a store directory that any number of
processes — worker pools, later CLI runs, CI jobs restoring a cache — can
share.

Design points:

* **Content addressing.**  Shards are named by a SHA-256 digest of the same
  content keys the in-memory cache uses (snippet characteristics, the full
  configuration-space key including platform parameters and throttling
  restrictions, and the objective's identity including its cost function's
  bytecode).  Two processes computing the same entry write the same shard;
  differing platforms, spaces or objectives can never alias.
* **Crash/corruption tolerance.**  Writes go to a temp file in the store
  and are published with an atomic :func:`os.replace`; readers treat any
  shard that fails to load (truncated, corrupt, wrong version) as a miss,
  so a damaged store heals itself by recomputation.
* **Concurrent safety.**  Readers only ever see fully written shards
  (atomic rename); concurrent writers of the same digest write identical
  bytes, so last-writer-wins is harmless.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (oracle -> store)
    from repro.core.oracle import OracleEntry

#: Bump when the pickled payload layout changes; old shards become misses.
STORE_FORMAT_VERSION = 1

#: Process-wide store-activity counters aggregated over every OracleStore
#: instance (merged into :func:`repro.core.oracle.cache_stats_snapshot`).
_GLOBAL_STORE_STATS: Dict[str, int] = {"store_retries": 0}


def store_stats_snapshot() -> Dict[str, int]:
    """Copy of the process-wide OracleStore activity counters."""
    return dict(_GLOBAL_STORE_STATS)


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the source of every module Oracle entries depend on.

    Entry *content* keys capture the inputs (snippet, space, objective) but
    not the simulator/Oracle semantics that turn inputs into entries; a
    code change there would otherwise let an old store silently serve
    entries computed by different physics.  Folding this fingerprint into
    every shard digest turns any edit of the relevant modules into clean
    store misses — conservative (some invalidations are unnecessary) but
    never stale.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro.core.objectives
        import repro.core.oracle
        import repro.soc

        hasher = hashlib.sha256()
        soc_dir = Path(repro.soc.__file__).parent
        sources = sorted(soc_dir.glob("*.py"))
        sources.append(Path(repro.core.oracle.__file__))
        sources.append(Path(repro.core.objectives.__file__))
        for source in sources:
            hasher.update(source.name.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(source.read_bytes())
            hasher.update(b"\x00")
        _CODE_FINGERPRINT = hasher.hexdigest()
    return _CODE_FINGERPRINT


class OracleStore:
    """Directory of content-addressed Oracle-entry shards.

    Transient IO errors (NFS hiccups, ``EINTR``/``EAGAIN``, a briefly
    unavailable mount in CI) retry up to ``max_retries`` times with
    bounded exponential backoff whose jitter is drawn from a *seeded*
    generator — backoff timing is reproducible for a given
    ``jitter_seed``, like every other stochastic component here.  Retries
    are counted in :attr:`retries` (and process-wide as
    ``store_retries``); exhausted retries degrade exactly as before —
    reads become misses, writes become memory-only (counted in
    :attr:`write_errors`) — the store never aborts the run.

    ``io_failure_hook`` is a test/chaos hook called before every physical
    read/write attempt as ``hook(op, path)`` (``op`` is ``"get"`` or
    ``"put"``); raising :class:`OSError` from it simulates a transient or
    persistent filesystem failure.
    """

    def __init__(self, root: Union[str, Path],
                 max_retries: int = 2,
                 backoff_s: float = 0.005,
                 jitter_seed: int = 0,
                 io_failure_hook: Optional[
                     Callable[[str, Path], None]] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0
        self.retries = 0
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.io_failure_hook = io_failure_hook
        self._jitter_rng = np.random.default_rng(jitter_seed)

    def _backoff_delay(self, attempt: int) -> float:
        """Deterministic-jitter exponential backoff delay for ``attempt``.

        ``backoff_s * 2^(attempt-1)`` scaled by a jitter factor in
        ``[0.5, 1.5)`` from the store's seeded generator (decorrelates
        concurrent processes without sacrificing reproducibility per
        store instance).
        """
        jitter = 0.5 + float(self._jitter_rng.random())
        return self.backoff_s * (2.0 ** (attempt - 1)) * jitter

    def _count_retry(self, attempt: int) -> None:
        self.retries += 1
        _GLOBAL_STORE_STATS["store_retries"] += 1
        delay = self._backoff_delay(attempt)
        if delay > 0:
            time.sleep(delay)

    def _shard_path(self, digest: str) -> Path:
        # Two-level fan-out keeps directory listings small at scale.
        return self.root / digest[:2] / f"{digest}.pkl"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def get(self, digest: str) -> Optional["OracleEntry"]:
        """Load the entry stored under ``digest``; ``None`` on miss.

        Any unreadable shard — missing, truncated, corrupted, or written by
        an incompatible version — is a miss: the caller recomputes and
        :meth:`put` overwrites the bad shard.
        """
        path = self._shard_path(digest)
        attempt = 0
        while True:
            try:
                if self.io_failure_hook is not None:
                    self.io_failure_hook("get", path)
                with path.open("rb") as handle:
                    version, entry = pickle.load(handle)
                break
            except FileNotFoundError:
                # A shard that does not exist is a clean miss, never a
                # transient failure — no retry.
                self.misses += 1
                return None
            except OSError:
                # Transient IO (EINTR, a flaky network mount, ...): retry
                # with backoff, then degrade to a miss.
                if attempt >= self.max_retries:
                    self.misses += 1
                    return None
                attempt += 1
                self._count_retry(attempt)
            except Exception:
                # Truncated/corrupt shard (e.g. a crashed writer on a
                # filesystem without atomic rename, or bit rot in a
                # restored CI cache) — recomputation heals it; no retry.
                self.misses += 1
                return None
        if version != STORE_FORMAT_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, digest: str, entry: "OracleEntry") -> bool:
        """Persist ``entry`` under ``digest`` (atomic publish).

        The store is a transparent optimisation tier: a filesystem failure
        (disk full, store directory removed or read-only) must never abort
        the run that already computed the entry, so write errors degrade to
        memory-only operation (counted in :attr:`write_errors`) instead of
        raising.  Returns whether the shard was published.
        """
        payload = pickle.dumps((STORE_FORMAT_VERSION, entry),
                               protocol=pickle.HIGHEST_PROTOCOL)
        path = self._shard_path(digest)
        attempt = 0
        while True:
            tmp_name = None
            try:
                if self.io_failure_hook is not None:
                    self.io_failure_hook("put", path)
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
                )
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
                return True
            except OSError:
                if tmp_name is not None:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                if attempt >= self.max_retries:
                    self.write_errors += 1
                    return False
                attempt += 1
                self._count_retry(attempt)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """This store's activity counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "write_errors": self.write_errors,
            "retries": self.retries,
        }


def content_digest(*parts) -> str:
    """SHA-256 digest of the ``repr`` of content-key tuples.

    ``repr`` of the key tuples is deterministic: they contain only str/int
    and floats (whose ``repr`` is the shortest round-trip form) plus frozen
    dataclasses of the same.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


# --------------------------------------------------------------------- #
# Process-wide default store
# --------------------------------------------------------------------- #
_DEFAULT_STORE: Optional[OracleStore] = None


def set_default_oracle_store(
    store: Optional[Union[OracleStore, str, Path]]
) -> Optional[OracleStore]:
    """Install (or clear, with ``None``) the process-wide default store.

    Frameworks created afterwards layer their :class:`OracleCache` over it.
    The experiment runner calls this in the parent process and forwards the
    path to worker processes so a whole ``--jobs N`` fan-out shares one
    store.  Returns the installed store.
    """
    global _DEFAULT_STORE
    if store is None:
        _DEFAULT_STORE = None
    elif isinstance(store, OracleStore):
        _DEFAULT_STORE = store
    else:
        _DEFAULT_STORE = OracleStore(store)
    return _DEFAULT_STORE


def get_default_oracle_store() -> Optional[OracleStore]:
    """The process-wide default store, if one was installed."""
    return _DEFAULT_STORE


def default_space_digest() -> str:
    """Digest of the default platform's space plus the code fingerprint.

    This is the key CI uses to cache the on-disk store between workflow
    runs: whenever the platform parameters, the space enumeration or any
    module the entries' semantics depend on changes, the digest — and with
    it the cache key — changes.  Shard digests embed the same
    :func:`code_fingerprint`, so a stale restored store could only produce
    misses anyway; the key keeps the cache from accumulating dead shards.
    """
    from repro.soc.configuration import ConfigurationSpace
    from repro.soc.platform import odroid_xu3_like

    space = ConfigurationSpace(odroid_xu3_like())
    return content_digest(space.cache_key(), code_fingerprint())
