"""Oracle policy construction (Sec. IV-A1).

"Each snippet in the set of target applications is executed at each
configuration supported by the SoC ... these system states and power
consumption measurements are used to construct Oracle policies which optimise
different objectives."

The :class:`OraclePolicy` here does exactly that against the SoC simulator:
for every snippet it sweeps the full configuration space (noise free) and
records the configuration minimising the objective.  The resulting
:class:`OracleTable` is the ground truth used (a) to normalise policy energy
(Table II, Fig. 4), (b) to measure decision accuracy (Fig. 3), and (c) to
label the offline IL training data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.objectives import ENERGY, Objective
from repro.core.oracle_store import (
    OracleStore,
    code_fingerprint,
    content_digest,
    get_default_oracle_store,
    store_stats_snapshot,
)
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult, SoCSimulator
from repro.soc.snippet import Snippet


@dataclass
class OracleEntry:
    """Best configuration and cost for one snippet."""

    snippet_name: str
    best_configuration: SoCConfiguration
    best_cost: float
    best_result: SnippetResult


@dataclass
class OracleTable:
    """Mapping from snippet name to its Oracle entry."""

    objective_name: str
    entries: Dict[str, OracleEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, snippet_name: str) -> bool:
        return snippet_name in self.entries

    def entry(self, snippet: Snippet) -> OracleEntry:
        if snippet.name not in self.entries:
            raise KeyError(f"snippet {snippet.name!r} not in Oracle table")
        return self.entries[snippet.name]

    def best_configuration(self, snippet: Snippet) -> SoCConfiguration:
        return self.entry(snippet).best_configuration

    def total_cost(self, snippets: Iterable[Snippet]) -> float:
        return sum(self.entry(s).best_cost for s in snippets)

    def storage_bytes(self, bytes_per_entry: int = 64) -> int:
        """Rough storage footprint — the reason Oracles cannot ship in firmware."""
        return len(self.entries) * bytes_per_entry


class OraclePolicy(DRMPolicy):
    """Policy that plays back the per-snippet optimal configurations.

    Unlike a deployable policy, the Oracle is told which snippet is about to
    execute (via :meth:`prepare_for`) — it has perfect knowledge by
    construction.  The framework runner handles this automatically.
    """

    def __init__(self, space: ConfigurationSpace, table: OracleTable) -> None:
        super().__init__(space)
        self.table = table
        self._next_snippet: Optional[Snippet] = None

    def prepare_for(self, snippet: Snippet) -> None:
        """Tell the Oracle which snippet the next decision is for."""
        self._next_snippet = snippet

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if self._next_snippet is None:
            return self.current
        self.current = self.table.best_configuration(self._next_snippet)
        return self.current


#: Cache key types (content-derived, never identity-derived).
SnippetKey = Tuple[str, int, float, Tuple[Tuple[str, float], ...]]
SpaceKey = Tuple


def snippet_cache_key(snippet: Snippet) -> SnippetKey:
    """Content key for a snippet (two equal snippets share Oracle entries)."""
    return (
        snippet.application,
        snippet.index,
        snippet.n_instructions,
        tuple(sorted(snippet.characteristics.as_dict().items())),
    )


def space_cache_key(space: ConfigurationSpace) -> SpaceKey:
    """Content key for a configuration space (platform params + exact configs)."""
    return space.cache_key()


def objective_cache_key(objective: Objective) -> Tuple[str, object]:
    """Key for an objective: its name plus the cost callable itself, so a
    custom objective reusing a built-in name never shares entries with it."""
    return (objective.name, objective.cost)


def _state_repr(value) -> str:
    """Content-faithful repr of digest material.

    ``repr`` of a large ndarray truncates (``...``), which could alias two
    different captured arrays; digest the full buffer instead.  Everything
    else uses plain ``repr`` — identity-based reprs digest uniquely per
    object, so such state never falsely *hits* the store (it merely never
    shares shards, the safe direction).
    """
    if isinstance(value, np.ndarray):
        return content_digest(str(value.dtype), value.shape, value.tobytes())
    return repr(value)


def _states_repr(values) -> Tuple[str, ...]:
    if values is None:
        return ()
    return tuple(_state_repr(value) for value in values)


def persistent_objective_key(objective: Objective) -> Tuple:
    """Cross-process content key for an objective.

    The in-memory key uses the cost callable's identity, which does not
    survive pickling to another process.  For the on-disk store the cost
    function is identified by where it lives plus a digest of its bytecode,
    default arguments and closure-cell values, so a custom objective
    reusing a built-in name still gets its own shards, an edited cost
    function invalidates old ones, and two parameterised closures over
    different values (same bytecode, different cells) never alias.
    """
    cost = objective.cost
    code = getattr(cost, "__code__", None)
    if code is not None:
        closure = getattr(cost, "__closure__", None)
        cells = (tuple(_state_repr(cell.cell_contents) for cell in closure)
                 if closure else ())
        code_digest = content_digest(
            code.co_code,
            repr(code.co_consts),
            _states_repr(getattr(cost, "__defaults__", None)),
            repr(getattr(cost, "__kwdefaults__", None)),
            cells,
        )
    else:
        # Callable object (class instance, functools.partial, ...): no
        # bytecode to identify it by, so digest the instance state and the
        # object's repr.  A default (identity-based) repr makes the digest
        # unique per object — such costs never alias a stored shard, they
        # just never share one either, which is the safe direction.
        state = getattr(cost, "__dict__", None)
        state_repr = (repr({key: _state_repr(value)
                            for key, value in sorted(state.items())})
                      if isinstance(state, dict) else repr(state))
        code_digest = content_digest(
            type(cost).__module__,
            type(cost).__qualname__,
            state_repr,
            repr(cost),
        )
    return (
        objective.name,
        getattr(cost, "__module__", ""),
        getattr(cost, "__qualname__", type(cost).__qualname__),
        code_digest,
    )


def persistent_entry_digest(snippet: Snippet, space: ConfigurationSpace,
                            objective: Objective) -> str:
    """Shard digest for one (snippet, space, objective) Oracle entry.

    Includes the :func:`~repro.core.oracle_store.code_fingerprint` of the
    modules the entry's semantics depend on, so a store written by older
    simulator/Oracle code cleanly misses instead of serving stale results.
    """
    return content_digest(
        snippet_cache_key(snippet),
        space_cache_key(space),
        persistent_objective_key(objective),
        code_fingerprint(),
    )


#: Process-wide cache-activity counters aggregated over every OracleCache
#: instance; the experiment runner snapshots them around each seed run to
#: surface hit/miss counts in the run metadata.
_GLOBAL_CACHE_STATS = {
    "hits": 0,
    "misses": 0,
    "store_hits": 0,
    "store_misses": 0,
}


def cache_stats_snapshot() -> Dict[str, int]:
    """Copy of the process-wide OracleCache activity counters.

    Includes the store tier's transient-IO ``store_retries`` counter, so
    the runner's per-seed metadata deltas surface retry storms next to
    the hit/miss numbers.
    """
    out = dict(_GLOBAL_CACHE_STATS)
    out.update(store_stats_snapshot())
    return out


class OracleCache:
    """Memo of Oracle entries keyed by (snippet, space, objective).

    Oracle construction is deterministic (noise-free), so an entry computed
    once for a snippet is valid for every later sweep over the same space
    and objective.  The framework attaches one cache per simulator instance;
    ``train_offline``, ``_bootstrap_models`` and
    ``evaluate_policy_on_snippets`` then stop re-sweeping snippets they have
    already solved.  Keys are derived from content, never object identity,
    so regenerated-but-identical snippets still hit.

    An optional :class:`~repro.core.oracle_store.OracleStore` layers a
    persistent, cross-process tier underneath: in-memory misses fall
    through to the store, and freshly computed entries are written through
    to it, so worker processes and later CLI invocations skip sweeps any
    process has ever completed.  ``store=None`` (the default) adopts the
    process-wide default store, if one is installed.
    """

    def __init__(self, store: Optional[OracleStore] = None) -> None:
        self._entries: Dict[Tuple, OracleEntry] = {}
        self.store_backend = (store if store is not None
                              else get_default_oracle_store())
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.store_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """This cache's hit/miss counters (memory tier and store tier)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
        }

    def lookup(self, snippet: Snippet, space: ConfigurationSpace,
               objective: Objective) -> Optional[OracleEntry]:
        key = (snippet_cache_key(snippet), space_cache_key(space),
               objective_cache_key(objective))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            _GLOBAL_CACHE_STATS["hits"] += 1
            return entry
        self.misses += 1
        _GLOBAL_CACHE_STATS["misses"] += 1
        if self.store_backend is not None:
            stored = self.store_backend.get(
                persistent_entry_digest(snippet, space, objective)
            )
            if stored is not None:
                self._entries[key] = stored
                self.store_hits += 1
                _GLOBAL_CACHE_STATS["store_hits"] += 1
                return stored
            self.store_misses += 1
            _GLOBAL_CACHE_STATS["store_misses"] += 1
        return None

    def store(self, snippet: Snippet, space: ConfigurationSpace,
              objective: Objective, entry: OracleEntry) -> OracleEntry:
        key = (snippet_cache_key(snippet), space_cache_key(space),
               objective_cache_key(objective))
        self._entries[key] = entry
        if self.store_backend is not None:
            self.store_backend.put(
                persistent_entry_digest(snippet, space, objective), entry
            )
        return entry

    def invalidate_snippet(self, snippet: Snippet) -> int:
        """Drop every entry for ``snippet`` (all spaces/objectives); return count."""
        target = snippet_cache_key(snippet)
        stale = [key for key in self._entries if key[0] == target]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.store_misses = 0


def _best_entry(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    snippet: Snippet,
    objective: Objective,
    use_batch: bool,
) -> OracleEntry:
    """Sweep one snippet over the space and return its minimising entry."""
    if use_batch and hasattr(simulator, "evaluate_expected_batch"):
        batch = simulator.evaluate_expected_batch(snippet, space)
        costs = objective.batch_cost(batch)
        # np.argmin returns the first minimum, matching the scalar loop's
        # strict `cost < best_cost` tie-breaking.
        best_index = int(np.argmin(costs))
        return OracleEntry(
            snippet_name=snippet.name,
            best_configuration=batch.configurations[best_index],
            best_cost=float(costs[best_index]),
            best_result=batch.result_at(best_index),
        )
    best_config: Optional[SoCConfiguration] = None
    best_cost = float("inf")
    best_result: Optional[SnippetResult] = None
    for config in space:
        result = simulator.evaluate_expected(snippet, config)
        cost = objective(result)
        if cost < best_cost:
            best_cost = cost
            best_config = config
            best_result = result
    assert best_config is not None and best_result is not None
    return OracleEntry(
        snippet_name=snippet.name,
        best_configuration=best_config,
        best_cost=best_cost,
        best_result=best_result,
    )


def build_oracle(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    snippets: Iterable[Snippet],
    objective: Objective = ENERGY,
    cache: Optional[OracleCache] = None,
    use_batch: bool = True,
) -> OracleTable:
    """Exhaustively construct the Oracle table for ``snippets``.

    Every snippet is evaluated (noise-free) at every configuration of the
    space; the minimising configuration is stored.  The sweep scales as
    ``len(snippets) * len(space)`` — this is exactly the "high computational
    complexity" that makes Oracle construction impossible at runtime on real
    hardware, so the sweep runs through the simulator's vectorized
    ``evaluate_expected_batch`` engine method whenever available
    (``use_batch=False`` forces the scalar reference loop; both produce
    bitwise-identical tables).  Passing an :class:`OracleCache` skips
    snippets whose entries were already computed for this space/objective.
    """
    table = OracleTable(objective_name=objective.name)
    for snippet in snippets:
        entry = (cache.lookup(snippet, space, objective)
                 if cache is not None else None)
        if entry is None:
            entry = _best_entry(simulator, space, snippet, objective, use_batch)
            if cache is not None:
                cache.store(snippet, space, objective, entry)
        table.entries[snippet.name] = entry
    return table


def oracle_energy_for(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    snippets: List[Snippet],
    objective: Objective = ENERGY,
    table: Optional[OracleTable] = None,
) -> float:
    """Total objective cost achieved by the Oracle over ``snippets``."""
    oracle_table = table or build_oracle(simulator, space, snippets, objective)
    return oracle_table.total_cost(snippets)
