"""Oracle policy construction (Sec. IV-A1).

"Each snippet in the set of target applications is executed at each
configuration supported by the SoC ... these system states and power
consumption measurements are used to construct Oracle policies which optimise
different objectives."

The :class:`OraclePolicy` here does exactly that against the SoC simulator:
for every snippet it sweeps the full configuration space (noise free) and
records the configuration minimising the objective.  The resulting
:class:`OracleTable` is the ground truth used (a) to normalise policy energy
(Table II, Fig. 4), (b) to measure decision accuracy (Fig. 3), and (c) to
label the offline IL training data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.control.policy import DRMPolicy
from repro.core.objectives import ENERGY, Objective
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult, SoCSimulator
from repro.soc.snippet import Snippet


@dataclass
class OracleEntry:
    """Best configuration and cost for one snippet."""

    snippet_name: str
    best_configuration: SoCConfiguration
    best_cost: float
    best_result: SnippetResult


@dataclass
class OracleTable:
    """Mapping from snippet name to its Oracle entry."""

    objective_name: str
    entries: Dict[str, OracleEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, snippet_name: str) -> bool:
        return snippet_name in self.entries

    def entry(self, snippet: Snippet) -> OracleEntry:
        if snippet.name not in self.entries:
            raise KeyError(f"snippet {snippet.name!r} not in Oracle table")
        return self.entries[snippet.name]

    def best_configuration(self, snippet: Snippet) -> SoCConfiguration:
        return self.entry(snippet).best_configuration

    def total_cost(self, snippets: Iterable[Snippet]) -> float:
        return sum(self.entry(s).best_cost for s in snippets)

    def storage_bytes(self, bytes_per_entry: int = 64) -> int:
        """Rough storage footprint — the reason Oracles cannot ship in firmware."""
        return len(self.entries) * bytes_per_entry


class OraclePolicy(DRMPolicy):
    """Policy that plays back the per-snippet optimal configurations.

    Unlike a deployable policy, the Oracle is told which snippet is about to
    execute (via :meth:`prepare_for`) — it has perfect knowledge by
    construction.  The framework runner handles this automatically.
    """

    def __init__(self, space: ConfigurationSpace, table: OracleTable) -> None:
        super().__init__(space)
        self.table = table
        self._next_snippet: Optional[Snippet] = None

    def prepare_for(self, snippet: Snippet) -> None:
        """Tell the Oracle which snippet the next decision is for."""
        self._next_snippet = snippet

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if self._next_snippet is None:
            return self.current
        self.current = self.table.best_configuration(self._next_snippet)
        return self.current


def build_oracle(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    snippets: Iterable[Snippet],
    objective: Objective = ENERGY,
) -> OracleTable:
    """Exhaustively construct the Oracle table for ``snippets``.

    Every snippet is evaluated (noise-free) at every configuration of the
    space; the minimising configuration is stored.  The sweep scales as
    ``len(snippets) * len(space)`` — cheap in simulation, but this is exactly
    the "high computational complexity" that makes Oracle construction
    impossible at runtime on real hardware.
    """
    table = OracleTable(objective_name=objective.name)
    for snippet in snippets:
        best_config: Optional[SoCConfiguration] = None
        best_cost = float("inf")
        best_result: Optional[SnippetResult] = None
        for config in space:
            result = simulator.evaluate_expected(snippet, config)
            cost = objective(result)
            if cost < best_cost:
                best_cost = cost
                best_config = config
                best_result = result
        assert best_config is not None and best_result is not None
        table.entries[snippet.name] = OracleEntry(
            snippet_name=snippet.name,
            best_configuration=best_config,
            best_cost=best_cost,
            best_result=best_result,
        )
    return table


def oracle_energy_for(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    snippets: List[Snippet],
    objective: Objective = ENERGY,
    table: Optional[OracleTable] = None,
) -> float:
    """Total objective cost achieved by the Oracle over ``snippets``."""
    oracle_table = table or build_oracle(simulator, space, snippets, objective)
    return oracle_table.total_cost(snippets)
