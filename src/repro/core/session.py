"""Resumable, step-addressable policy evaluation sessions.

:class:`PolicySession` decomposes the closed ``run_policy_on_snippets`` loop
into an explicit state machine over the deployment data flow::

    decide  ->  clamp/throttle  ->  execute  ->  observe

Each phase is a public method, and all loop-carried state (the
:class:`~repro.utils.records.RunLog`, the
:class:`~repro.soc.energy.EnergyAccount`, the last observed counters, the
accumulated Oracle energy and the step cursor) lives on the session object.
That makes a policy run:

* **resumable** — a session can be advanced one step (or one phase) at a
  time, inspected mid-run via :meth:`result`, and continued later;
* **interleavable** — many sessions can be advanced in lockstep by an
  external driver (:class:`~repro.fleet.engine.FleetEngine`), which may
  substitute its own batched implementations for the ``decide`` and
  ``execute`` phases as long as it feeds the outcomes back through
  :meth:`observe`;
* **bitwise-faithful** — driving a fresh session to completion performs
  exactly the statements of the original loop in the original order, so
  :func:`~repro.core.framework.run_policy_on_snippets` (now a thin driver
  over one session) reproduces all prior traces unchanged.

The clamp/throttle phase is folded into :meth:`decide`'s output: the
returned :class:`SessionStep` carries both the policy's raw proposal and
the hardware-clamped configuration that will actually execute, plus the
``throttled`` flag recorded in the log.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.oracle import OraclePolicy, OracleTable
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.energy import EnergyAccount
from repro.soc.simulator import SnippetResult, SoCSimulator
from repro.soc.snippet import Snippet
from repro.utils.records import RunLog, RunRecord

#: Bump when the snapshot payload layout changes; old snapshots then fail
#: to restore with a clear :class:`SnapshotError` instead of misbehaving.
SNAPSHOT_FORMAT_VERSION = 1

#: Leading magic of serialized snapshots (identifies the container format).
_SNAPSHOT_MAGIC = b"RPSESNAP"

#: Sentinel distinguishing "no rng override" from an explicit ``None``.
_RNG_UNSET = object()


class SnapshotError(RuntimeError):
    """A serialized session snapshot failed verification or restore."""


@dataclass
class SessionStep:
    """One decided-but-not-yet-observed step of a :class:`PolicySession`.

    ``proposed`` is the policy's raw decision; ``configuration`` is what
    will actually execute after the clamp/throttle phase (identical to
    ``proposed`` outside throttle windows).  ``configuration_index`` is an
    optional fast-path hint — the index of ``configuration`` in the
    session's space — filled in when the decider already knows it (batched
    fleet decides do), so downstream batch gathers skip the dict lookup.
    """

    index: int
    snippet: Snippet
    proposed: SoCConfiguration
    configuration: SoCConfiguration
    throttled: bool
    configuration_index: Optional[int] = None

    @classmethod
    def _from_values(cls, values: dict) -> "SessionStep":
        """Hot-path constructor adopting ``values`` as the instance state.

        Bypasses the generated ``__init__`` — callers (the fleet engine's
        batched decide phase) guarantee a complete field dict.
        """
        step = cls.__new__(cls)
        step.__dict__ = values
        return step


class PolicySession:
    """State machine executing one policy over one snippet trace.

    The constructor mirrors :func:`~repro.core.framework
    .run_policy_on_snippets` argument for argument; driving the session to
    completion with :meth:`run` is bitwise equivalent to the original
    closed loop.  ``rng`` is the measurement-noise stream handed to the
    simulator for every executed snippet; sessions that will be advanced
    in lockstep by a fleet driver must each own an independent generator
    (a shared stream would interleave differently than sequential runs).
    """

    def __init__(
        self,
        simulator: SoCSimulator,
        space: ConfigurationSpace,
        policy: DRMPolicy,
        snippets: Sequence[Snippet],
        oracle_table: Optional[OracleTable] = None,
        rng: Optional[np.random.Generator] = None,
        reset_policy: bool = True,
        initial_configuration: Optional[SoCConfiguration] = None,
        space_schedule: Optional[Callable[[int], ConfigurationSpace]] = None,
        name: str = "device",
    ) -> None:
        self.simulator = simulator
        self.space = space
        self.policy = policy
        self.snippets: List[Snippet] = list(snippets)
        self._trace_len = len(self.snippets)
        self.oracle_table = oracle_table
        self.rng = rng
        self.space_schedule = space_schedule
        self.name = name
        if reset_policy:
            policy.reset(initial_configuration)
        self.log = RunLog()
        self.account = EnergyAccount()
        self.results: List[SnippetResult] = []
        self.counters: Optional[PerformanceCounters] = None
        self.oracle_energy = 0.0
        self._cursor = 0
        self._pending: Optional[SessionStep] = None
        self._opp_columns: Optional[Tuple[List[float], List[float]]] = None

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #
    @property
    def step_index(self) -> int:
        """Index of the next snippet to decide (== completed step count)."""
        return self._cursor

    @property
    def done(self) -> bool:
        return self._cursor >= self._trace_len

    def __len__(self) -> int:
        return self._trace_len

    @property
    def pending(self) -> Optional[SessionStep]:
        """The decided step awaiting execute/observe, if any."""
        return self._pending

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def decide(self) -> SessionStep:
        """Phase 1+2: ask the policy for a decision and clamp it.

        The Oracle policy is told which snippet is coming (it has perfect
        knowledge by construction); every other policy decides from the
        counters of the previous snippet (``None`` on the first step).
        When a ``space_schedule`` is installed and the step's active space
        is a restriction of the base space, a decision outside it is
        projected in via :meth:`~repro.soc.configuration.ConfigurationSpace
        .clamp`.
        """
        if self.done:
            raise RuntimeError(f"session {self.name!r} is already complete")
        if self._pending is not None:
            raise RuntimeError(
                f"session {self.name!r} has an unobserved pending step"
            )
        snippet = self.snippets[self._cursor]
        if isinstance(self.policy, OraclePolicy):
            self.policy.prepare_for(snippet)
        proposed = self.policy.decide(self.counters)
        config = proposed
        throttled = False
        if self.space_schedule is not None:
            active_space = self.space_schedule(self._cursor)
            throttled = active_space is not self.space
            if throttled and not active_space.contains(config):
                config = active_space.clamp(config)
        step = SessionStep(
            index=self._cursor,
            snippet=snippet,
            proposed=proposed,
            configuration=config,
            throttled=throttled,
        )
        self._pending = step
        return step

    def adopt_step(self, step: SessionStep) -> SessionStep:
        """Install an externally decided step (fleet batched-decide path).

        The caller guarantees the step is what :meth:`decide` would have
        produced — same policy state mutation, same clamping; the session
        only records it as pending so :meth:`observe` can complete it.
        """
        if self.done:
            raise RuntimeError(f"session {self.name!r} is already complete")
        if self._pending is not None:
            raise RuntimeError(
                f"session {self.name!r} has an unobserved pending step"
            )
        if step.index != self._cursor:
            raise ValueError(
                f"step index {step.index} does not match session cursor "
                f"{self._cursor}"
            )
        self._pending = step
        return step

    def execute(self, step: Optional[SessionStep] = None) -> SnippetResult:
        """Phase 3: run the pending step's snippet on the simulator."""
        step = step if step is not None else self._pending
        if step is None:
            raise RuntimeError("no pending step to execute; call decide() first")
        return self.simulator.run_snippet(
            step.snippet, step.configuration, rng=self.rng
        )

    def _opp_floats(self, index: int) -> Tuple[float, float]:
        """(big, little) OPP indices of configuration ``index`` as floats.

        Log-record fast path for index-addressed decisions: the columns
        are read once from the space's SoA view and cached as plain-float
        lists, replacing two per-step tuple scans on the configuration
        object with two list lookups (identical values).
        """
        columns = self._opp_columns
        if columns is None:
            soa = self.space.soa_view()
            columns = (
                [float(v) for v in soa.cluster("big").opp_index.tolist()],
                [float(v) for v in soa.cluster("little").opp_index.tolist()],
            )
            self._opp_columns = columns
        return columns[0][index], columns[1][index]

    def observe(self, step: SessionStep, result: SnippetResult,
                policy_observed: bool = False) -> None:
        """Phase 4: feed the outcome back and append the log record.

        The statement order matches the original loop exactly: policy
        feedback, counters update, accounting, then the log record (with
        the Oracle columns when a table is installed).  A fleet driver
        that already delivered the policy feedback through a batched
        ``fleet_observe`` passes ``policy_observed=True`` to skip the
        scalar ``policy.observe`` call (everything else is unchanged).
        """
        if step is not self._pending:
            if self._pending is None:
                raise RuntimeError(
                    "no pending step to observe; call decide() first"
                )
            raise ValueError("observed step is not the session's pending step")
        if not policy_observed:
            self.policy.observe(result)
        self.counters = result.counters
        self.account.add(result)
        self.results.append(result)
        config = step.configuration
        if step.configuration_index is not None:
            big_opp, little_opp = self._opp_floats(step.configuration_index)
        else:
            big_opp = float(config.opp_index("big"))
            little_opp = float(config.opp_index("little"))
        record = {
            "energy_j": float(result.energy_j),
            "time_s": float(result.execution_time_s),
            "power_w": float(result.average_power_w),
            "big_opp": big_opp,
            "little_opp": little_opp,
        }
        if self.space_schedule is not None:
            record["throttled"] = 1.0 if step.throttled else 0.0
        if self.oracle_table is not None and step.snippet.name in self.oracle_table:
            entry = self.oracle_table.entry(step.snippet)
            oracle_big = float(entry.best_configuration.opp_index("big"))
            record["oracle_big_opp"] = oracle_big
            record["oracle_match"] = float(big_opp == oracle_big)
            record["oracle_energy_j"] = float(entry.best_result.energy_j)
            self.oracle_energy += entry.best_result.energy_j
        # Per-step hot path: the record dict above is already coerced, so
        # the RunRecord skips the generated __init__.
        self.log.append_record(RunRecord._from_values(step.index, record))
        self._pending = None
        self._cursor += 1

    # ------------------------------------------------------------------ #
    # Drivers
    # ------------------------------------------------------------------ #
    def advance(self) -> SnippetResult:
        """Run one full step (decide -> clamp -> execute -> observe)."""
        step = self.decide()
        result = self.execute(step)
        self.observe(step, result)
        return result

    def run(self) -> "PolicyRunResult":
        """Drive the session to completion and return its result."""
        while not self.done:
            self.advance()
        return self.result()

    def result(self) -> "PolicyRunResult":
        """Snapshot of the run so far (complete or not).

        The returned object shares the session's log/account/results, so a
        snapshot taken mid-run keeps reflecting the session as it advances.
        """
        from repro.core.framework import PolicyRunResult

        return PolicyRunResult(
            policy_name=self.policy.name,
            log=self.log,
            account=self.account,
            oracle_energy_j=(self.oracle_energy
                             if self.oracle_table is not None else None),
            results=self.results,
        )

    def state_digest(self) -> str:
        """Hex SHA-256 over the session's observable run state.

        Covers the name, the step cursor, every log column (raw float64
        bit patterns, so two digests match only when the logs are
        *bitwise* identical), and the accounting totals.  This is the
        equality the fleet control plane's recovery invariant is stated
        in: a recovered run and an uninterrupted run must report the
        same digest for every device.
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        digest.update(struct.pack("<q", self._cursor))
        columns = self.log.to_dict() if len(self.log) else {}
        for key in sorted(columns):
            values = columns[key]
            digest.update(key.encode("utf-8"))
            digest.update(struct.pack(f"<{len(values)}d", *values))
        digest.update(struct.pack(
            "<3d", self.account.total_energy_j, self.account.total_time_s,
            self.oracle_energy,
        ))
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Durable snapshots
    # ------------------------------------------------------------------ #
    def snapshot_state(self, rng: Any = _RNG_UNSET) -> Dict[str, Any]:
        """Full restorable session state as one picklable dict.

        Everything loop-carried is captured — policy (with its learned
        state), space, trace, log, accounting, counters, cursor and the
        pending step, if the session is paused mid-phase between decide
        and observe.  Two references are deliberately excluded:

        * the **simulator** (shared infrastructure, supplied again at
          :meth:`restore`);
        * the **space_schedule** (a closure over the live space object;
          rebuild it over the restored session's ``.space`` — see
          :meth:`restore`).

        ``rng`` overrides the stored noise generator.  A session adopted
        for batched execution by the fleet engine has had its private
        stream pre-drawn to the end of the trace; pass
        :meth:`~repro.fleet.engine.FleetEngine.sequential_rng_state` so
        the snapshot resumes with sequential-equivalent draws.
        """
        return {
            "version": SNAPSHOT_FORMAT_VERSION,
            "name": self.name,
            "policy": self.policy,
            "space": self.space,
            "snippets": self.snippets,
            "oracle_table": self.oracle_table,
            "rng": self.rng if rng is _RNG_UNSET else rng,
            "log": self.log,
            "account": self.account,
            "results": self.results,
            "counters": self.counters,
            "oracle_energy": self.oracle_energy,
            "cursor": self._cursor,
            "pending": self._pending,
        }

    def snapshot_bytes(self, rng: Any = _RNG_UNSET) -> bytes:
        """Serialized, checksummed snapshot (magic + SHA-256 + payload).

        One ``pickle.dumps`` over the whole state dict preserves the
        object-identity invariants restore depends on (``policy.space is
        session.space``, ``pending.snippet is snippets[pending.index]``).
        """
        payload = pickle.dumps(self.snapshot_state(rng),
                               protocol=pickle.HIGHEST_PROTOCOL)
        return _SNAPSHOT_MAGIC + hashlib.sha256(payload).digest() + payload

    def save_snapshot(self, path: Union[str, Path],
                      rng: Any = _RNG_UNSET) -> Path:
        """Write a durable snapshot to ``path`` (atomic temp + rename).

        Readers only ever see a fully written snapshot: the bytes go to a
        temp file in the target directory and are published with
        :func:`os.replace`, so a crash mid-write leaves the previous
        snapshot intact.
        """
        path = Path(path)
        data = self.snapshot_bytes(rng)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def unpack_snapshot(data: bytes) -> Dict[str, Any]:
        """Verify and deserialize :meth:`snapshot_bytes` output.

        Raises :class:`SnapshotError` on a bad magic, a checksum mismatch
        (truncated or bit-rotted snapshot), an unpicklable payload, or a
        version mismatch — a damaged snapshot must never restore into a
        silently wrong session.
        """
        header = len(_SNAPSHOT_MAGIC)
        if data[:header] != _SNAPSHOT_MAGIC:
            raise SnapshotError("not a session snapshot (bad magic)")
        digest, payload = data[header:header + 32], data[header + 32:]
        if hashlib.sha256(payload).digest() != digest:
            raise SnapshotError(
                "snapshot checksum mismatch (truncated or corrupted)"
            )
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(f"snapshot payload failed to load: {exc}") \
                from exc
        version = state.get("version") if isinstance(state, dict) else None
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {version!r} is not "
                f"{SNAPSHOT_FORMAT_VERSION}"
            )
        return state

    @classmethod
    def restore(
        cls,
        state: Union[Dict[str, Any], bytes],
        simulator: SoCSimulator,
        space_schedule: Optional[Callable[[int], ConfigurationSpace]] = None,
    ) -> "PolicySession":
        """Rebuild a session from :meth:`snapshot_state` / snapshot bytes.

        The restored session continues bitwise identically to the original
        (same policy state, same log, same pending step, same noise
        stream).  ``space_schedule`` must be rebuilt over the *restored*
        session's ``.space`` (e.g. ``make_space_schedule(session.space,
        trace)``) — a schedule closed over the original space object would
        make every step compare as throttled against the unpickled space.
        """
        if isinstance(state, (bytes, bytearray)):
            state = cls.unpack_snapshot(bytes(state))
        session = cls(
            simulator,
            state["space"],
            state["policy"],
            state["snippets"],
            oracle_table=state["oracle_table"],
            rng=state["rng"],
            reset_policy=False,
            space_schedule=space_schedule,
            name=state["name"],
        )
        session.log = state["log"]
        session.account = state["account"]
        session.results = state["results"]
        session.counters = state["counters"]
        session.oracle_energy = state["oracle_energy"]
        session._cursor = state["cursor"]
        session._pending = state["pending"]
        return session

    @classmethod
    def load_snapshot(
        cls,
        path: Union[str, Path],
        simulator: SoCSimulator,
        space_schedule: Optional[Callable[[int], ConfigurationSpace]] = None,
    ) -> "PolicySession":
        """Restore a session from a :meth:`save_snapshot` file."""
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise SnapshotError(f"snapshot {path} unreadable: {exc}") from exc
        return cls.restore(data, simulator, space_schedule=space_schedule)
