"""Offline imitation-learning policy (Sec. IV-A1).

The offline IL methodology approximates the Oracle with a supervised model:
the Oracle is executed over the design-time (training) applications, the
Table-I counters observed along the way form the states, and the Oracle's
chosen configurations form the action labels.  Any off-the-shelf model can
represent the policy; following the paper (and its references [18, 19]) this
module supports a neural-network classifier (the representation used for the
online-adaptive policy) as well as a regression-tree classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.objectives import ENERGY, Objective
from repro.core.oracle import OracleTable, build_oracle
from repro.ml.base import Classifier
from repro.ml.mlp import MLPClassifier
from repro.ml.scaling import StandardScaler
from repro.ml.tree import DecisionTreeClassifier
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet


@dataclass
class ILDataset:
    """Supervised dataset of (counter features, oracle configuration index)."""

    features: np.ndarray
    labels: np.ndarray
    applications: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError("features and labels must have the same length")

    def __len__(self) -> int:
        return self.features.shape[0]

    def merge(self, other: "ILDataset") -> "ILDataset":
        return ILDataset(
            features=np.vstack([self.features, other.features]),
            labels=np.concatenate([self.labels, other.labels]),
            applications=self.applications + other.applications,
        )


def collect_il_dataset(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    snippets: Sequence[Snippet],
    objective: Objective = ENERGY,
    oracle_table: Optional[OracleTable] = None,
) -> ILDataset:
    """Execute ``snippets`` under the Oracle and collect (state, action) pairs.

    The state for snippet ``k`` is the counter feature vector observed while
    executing snippet ``k-1`` at its Oracle configuration (the information a
    deployed policy would have when making the decision); the label is the
    Oracle configuration index for snippet ``k``.  The first snippet of the
    sequence is skipped because no prior observation exists.
    """
    table = oracle_table or build_oracle(simulator, space, snippets, objective)
    features: List[np.ndarray] = []
    labels: List[int] = []
    applications: List[str] = []
    previous_counters: Optional[PerformanceCounters] = None
    for snippet in snippets:
        best_config = table.best_configuration(snippet)
        if previous_counters is not None:
            features.append(previous_counters.feature_vector())
            labels.append(space.index_of(best_config))
            applications.append(snippet.application)
        result = simulator.run_snippet(snippet, best_config)
        previous_counters = result.counters
    if not features:
        raise ValueError("need at least two snippets to build an IL dataset")
    return ILDataset(
        features=np.vstack(features),
        labels=np.array(labels, dtype=int),
        applications=applications,
    )


class OfflineILPolicy(DRMPolicy):
    """Supervised approximation of the Oracle policy.

    Parameters
    ----------
    space:
        The configuration space whose indices serve as class labels.
    model:
        ``"mlp"`` (default, the representation used by the online-adaptive
        policy), ``"tree"`` (regression-tree classifier as in [18, 19]) or a
        pre-constructed :class:`~repro.ml.base.Classifier` instance.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        model: object = "mlp",
        hidden_sizes: Sequence[int] = (24, 24),
        epochs: int = 150,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(space)
        self.scaler = StandardScaler()
        if isinstance(model, Classifier):
            self.classifier: Classifier = model
        elif model == "mlp":
            self.classifier = MLPClassifier(
                hidden_sizes=hidden_sizes, epochs=epochs, seed=seed,
                learning_rate=5e-3,
            )
        elif model == "tree":
            self.classifier = DecisionTreeClassifier(max_depth=10,
                                                     min_samples_leaf=2)
        else:
            raise ValueError(f"unknown model specification {model!r}")
        self._trained = False

    def train(self, dataset: ILDataset) -> "OfflineILPolicy":
        """Fit the policy to an offline IL dataset."""
        scaled = self.scaler.fit_transform(dataset.features)
        if isinstance(self.classifier, MLPClassifier):
            self.classifier.ensure_classes(
                classes=range(len(self.space)), n_features=scaled.shape[1]
            )
            self.classifier.partial_fit(scaled, dataset.labels,
                                        epochs=self.classifier.epochs)
        else:
            self.classifier.fit(scaled, dataset.labels)
        self._trained = True
        return self

    def predict_index(self, counters: PerformanceCounters) -> int:
        if not self._trained:
            raise RuntimeError("OfflineILPolicy has not been trained yet")
        features = self.scaler.transform(counters.feature_vector().reshape(1, -1))
        return int(self.classifier.predict(features)[0])

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None or not self._trained:
            return self.current
        index = self.predict_index(counters)
        index = max(0, min(len(self.space) - 1, index))
        self.current = self.space[index]
        return self.current

    def accuracy_on(self, dataset: ILDataset) -> float:
        """Top-1 accuracy of the policy against the Oracle labels."""
        scaled = self.scaler.transform(dataset.features)
        predictions = self.classifier.predict(scaled)
        return float(np.mean(predictions == dataset.labels))
