"""Unified simulation-engine layer.

Every simulator in the repo — the snippet-level SoC simulator behind the
Oracle/IL experiments, the frame-loop GPU simulator behind Figures 2/5 and
the cycle-level NoC simulator behind the Sec. III-C models — exposes the same
batch-evaluation surface defined by :class:`SimulationEngine`:

* ``engine_name`` — a short identifier (``"soc"``, ``"gpu"``, ``"noc"``);
* ``evaluate_batch(unit, configurations)`` — evaluate one unit of work
  (a snippet, a frame trace, a traffic pattern) deterministically across many
  configurations in a single call, returning an indexable per-configuration
  result collection.

Batch evaluation is first-class because it is the hot path of the paper's
methodology: Oracle construction executes "each snippet ... at each
configuration supported by the SoC".  All three engines implement it with
real vectorized sweeps: the SoC engine with a NumPy-vectorized
configuration sweep (:meth:`repro.soc.simulator.SoCSimulator.evaluate_expected_batch`),
the GPU engine with a broadcast ``(configurations x frames)`` render
(:meth:`repro.gpu.simulator.GPUSimulator.evaluate_batch`), and the NoC
engine with a prepare-once/replay-per-configuration packet sweep — each an
order of magnitude (SoC/GPU) or 2x (NoC) faster than the scalar loop while
producing bitwise identical results.

The module also provides a tiny engine registry so tooling (CLI, tests,
future sharding/distribution layers) can enumerate and construct engines by
name without importing every simulator package up front.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Protocol, Sequence, runtime_checkable


@runtime_checkable
class SimulationEngine(Protocol):
    """Structural protocol implemented by every simulator in the repo.

    Implementations are free to return an engine-specific batch container
    from :meth:`evaluate_batch` (the SoC engine returns a struct-of-arrays
    :class:`~repro.soc.simulator.SoCBatchResult`), as long as it supports
    ``len()`` and integer indexing yielding per-configuration results.
    """

    engine_name: str

    def evaluate_batch(self, unit: Any, configurations: Sequence[Any]) -> Any:
        """Evaluate ``unit`` at every configuration (deterministic sweep)."""
        ...


#: Lazy constructors for the built-in engines, keyed by ``engine_name``.
_ENGINE_FACTORIES: Dict[str, Callable[[], type]] = {}


def register_engine(name: str, loader: Callable[[], type],
                    overwrite: bool = False) -> None:
    """Register a lazy class loader for an engine name."""
    if name in _ENGINE_FACTORIES and not overwrite:
        raise ValueError(f"engine {name!r} is already registered")
    _ENGINE_FACTORIES[name] = loader


def _load_soc() -> type:
    from repro.soc.simulator import SoCSimulator
    return SoCSimulator


def _load_gpu() -> type:
    from repro.gpu.simulator import GPUSimulator
    return GPUSimulator


def _load_noc() -> type:
    from repro.noc.simulator import NoCSimulator
    return NoCSimulator


register_engine("soc", _load_soc)
register_engine("gpu", _load_gpu)
register_engine("noc", _load_noc)


def available_engines() -> List[str]:
    """Names of all registered simulation engines."""
    return sorted(_ENGINE_FACTORIES)


def engine_class(name: str) -> type:
    """Resolve an engine name to its simulator class (imported lazily)."""
    if name not in _ENGINE_FACTORIES:
        raise KeyError(f"unknown engine {name!r}; available: {available_engines()}")
    return _ENGINE_FACTORIES[name]()
