"""End-to-end online learning framework and policy evaluation runner (Fig. 1).

:func:`run_policy_on_snippets` is the shared evaluation loop: it executes a
snippet trace under a policy, feeds observations back, and records per-snippet
energy, time and (when an Oracle table is supplied) decision accuracy.

:class:`OnlineLearningFramework` is the high-level public API: it owns the
platform, configuration space, simulator and Oracle machinery, trains the
offline IL policy from design-time workloads, bootstraps the online power /
performance models, and constructs the online-IL and RL policies used by the
experiments and examples.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.control.policy import DRMPolicy
from repro.control.rl import QLearningController
from repro.core.objectives import ENERGY, Objective
from repro.core.offline_il import ILDataset, OfflineILPolicy, collect_il_dataset
from repro.core.online_il import OnlineILPolicy
from repro.core.oracle import OracleCache, OraclePolicy, OracleTable, build_oracle
from repro.core.oracle_store import OracleStore
from repro.core.runtime_oracle import RuntimeOracle
from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.energy import EnergyAccount
from repro.soc.platform import PlatformSpec, odroid_xu3_like
from repro.soc.simulator import SnippetResult, SoCSimulator
from repro.soc.snippet import Snippet
from repro.utils.records import RunLog
from repro.utils.rng import SeedLike, make_rng, spawn_rngs
from repro.utils.stats import trailing_nanmean
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenarios -> core)
    from repro.scenarios.base import ScenarioTrace


@dataclass
class PolicyRunResult:
    """Outcome of running one policy over a snippet trace."""

    policy_name: str
    log: RunLog
    account: EnergyAccount
    oracle_energy_j: Optional[float] = None
    results: List[SnippetResult] = field(default_factory=list)

    @property
    def total_energy_j(self) -> float:
        return self.account.total_energy_j

    @property
    def total_time_s(self) -> float:
        return self.account.total_time_s

    @property
    def normalized_energy(self) -> float:
        """Energy normalised w.r.t. the Oracle (Table II / Fig. 4 metric)."""
        if self.oracle_energy_j is None or self.oracle_energy_j <= 0:
            raise ValueError("Oracle energy not available for normalisation")
        return self.total_energy_j / self.oracle_energy_j

    def accuracy_series(self, window: int = 10) -> np.ndarray:
        """Moving-average accuracy w.r.t. the Oracle decisions (Fig. 3).

        Steps whose snippet was missing from the Oracle table carry no
        ``oracle_match`` value; they are excluded from the moving windows
        (an all-missing prefix yields leading NaNs).
        """
        if len(self.log) == 0:
            raise ValueError("run is empty (no snippets were executed)")
        matches = self.log.column("oracle_match")
        if np.all(np.isnan(matches)):
            raise ValueError("run was executed without an Oracle table")
        return trailing_nanmean(matches, window) * 100.0

    def time_axis_s(self) -> np.ndarray:
        """Cumulative execution time after each snippet (x-axis of Fig. 3)."""
        return np.cumsum(self.log.column("time_s"))

    def final_accuracy(self, window: int = 10) -> float:
        series = self.accuracy_series(window=window)
        return float(series[-1])

    def per_application_energy(self) -> Dict[str, float]:
        return self.account.per_application_energy()


def run_policy_on_snippets(
    simulator: SoCSimulator,
    space: ConfigurationSpace,
    policy: DRMPolicy,
    snippets: Sequence[Snippet],
    oracle_table: Optional[OracleTable] = None,
    rng: Optional[np.random.Generator] = None,
    reset_policy: bool = True,
    initial_configuration: Optional[SoCConfiguration] = None,
    space_schedule: Optional[Callable[[int], ConfigurationSpace]] = None,
) -> PolicyRunResult:
    """Execute ``snippets`` under ``policy`` and collect the run statistics.

    The loop mirrors the deployment data flow: the policy decides the next
    configuration from the counters of the *previous* snippet, the simulator
    executes the snippet, and the result is fed back to the policy.

    ``space_schedule`` (scenario hook) maps the step index to the
    configuration space that is actually reachable at that step — e.g. a
    thermally throttled restriction of ``space``.  The policy still reasons
    over its own space; if its decision falls outside the active space the
    hardware-clamped configuration
    (:meth:`~repro.soc.configuration.ConfigurationSpace.clamp`) is executed
    instead.  The run log's ``throttled`` column flags every step whose
    active space is restricted (a throttle window is in force), whether or
    not this particular decision needed clamping.

    The loop itself lives in :class:`~repro.core.session.PolicySession`
    (decide -> clamp/throttle -> execute -> observe, with all run state on
    the session object); this function simply drives one session to
    completion, which performs exactly the original loop's statements in
    the original order.
    """
    from repro.core.session import PolicySession

    session = PolicySession(
        simulator,
        space,
        policy,
        snippets,
        oracle_table=oracle_table,
        rng=rng,
        reset_policy=reset_policy,
        initial_configuration=initial_configuration,
        space_schedule=space_schedule,
    )
    return session.run()


class OnlineLearningFramework:
    """High-level entry point tying models, policies and the simulator together.

    Typical usage (see ``examples/quickstart.py``)::

        framework = OnlineLearningFramework(seed=0)
        framework.train_offline(workloads=training_workloads())
        online_policy = framework.build_online_il_policy()
        outcome = framework.evaluate_policy(online_policy, get_workload("kmeans"))
    """

    def __init__(
        self,
        platform: Optional[PlatformSpec] = None,
        objective: Objective = ENERGY,
        allow_core_gating: bool = False,
        noise_scale: float = 0.01,
        seed: SeedLike = 0,
        oracle_store: Optional["OracleStore"] = None,
    ) -> None:
        self.platform = platform or odroid_xu3_like()
        self.objective = objective
        # The default space controls the two cluster frequencies (the knobs of
        # the paper's Figs. 3-4 study).  Setting ``allow_core_gating=True``
        # additionally exposes the number of active big cores (a DyPO-like
        # richer space), which widens the offline-IL generalisation gap at the
        # cost of a larger Oracle sweep; the ablation benchmarks exercise it.
        self.space = ConfigurationSpace(
            self.platform,
            allow_core_gating=allow_core_gating,
            gated_clusters=("big",) if allow_core_gating else None,
        )
        rngs = spawn_rngs(seed, 4)
        self._sim_rng, self._workload_rng, self._policy_rng, self._misc_rng = rngs
        self.simulator = SoCSimulator(self.platform, noise_scale=noise_scale,
                                      seed=self._sim_rng)
        # Oracle construction is deterministic, so entries computed during
        # offline training are reused verbatim by every later evaluation
        # instead of re-sweeping the configuration space per call.  When an
        # on-disk store is available (passed explicitly or installed as the
        # process default), the cache also shares entries across processes
        # and invocations.
        self.oracle_cache = OracleCache(store=oracle_store)
        self.trace_generator = SnippetTraceGenerator(seed=self._workload_rng)
        self.offline_policy: Optional[OfflineILPolicy] = None
        self.offline_dataset: Optional[ILDataset] = None
        self.power_model = CpuPowerModel(self.platform)
        self.performance_model = CpuPerformanceModel(self.platform)
        self._training_snippets: List[Snippet] = []

    # ------------------------------------------------------------------ #
    # Offline (design-time) phase
    # ------------------------------------------------------------------ #
    def generate_trace(self, workload: WorkloadSpec,
                       snippet_factor: float = 1.0) -> List[Snippet]:
        """Generate a snippet trace for one workload."""
        spec = workload.scaled(snippet_factor) if snippet_factor != 1.0 else workload
        return self.trace_generator.generate(spec)

    def build_oracle_for(self, snippets: Sequence[Snippet]) -> OracleTable:
        """Exhaustive Oracle for a snippet trace (noise-free, cached sweep)."""
        return build_oracle(self.simulator, self.space, snippets, self.objective,
                            cache=self.oracle_cache)

    def train_offline(
        self,
        workloads: Sequence[WorkloadSpec],
        snippet_factor: float = 1.0,
        policy_model: str = "mlp",
        hidden_sizes: Sequence[int] = (24, 24),
        epochs: int = 150,
    ) -> OfflineILPolicy:
        """Design-time phase: build the Oracle, the IL dataset and the policy.

        Also bootstraps the online power and performance models from the same
        design-time executions, as the paper's methodology prescribes.
        """
        snippets: List[Snippet] = []
        for workload in workloads:
            snippets.extend(self.generate_trace(workload, snippet_factor))
        self._training_snippets = snippets
        oracle_table = self.build_oracle_for(snippets)
        dataset = collect_il_dataset(
            self.simulator, self.space, snippets, self.objective,
            oracle_table=oracle_table,
        )
        self.offline_dataset = dataset
        policy = OfflineILPolicy(
            self.space, model=policy_model, hidden_sizes=hidden_sizes,
            epochs=epochs, seed=int(self._policy_rng.integers(0, 2**31 - 1)),
        )
        policy.train(dataset)
        self.offline_policy = policy
        self._bootstrap_models(snippets, oracle_table)
        return policy

    def _bootstrap_models(self, snippets: Sequence[Snippet],
                          oracle_table: OracleTable) -> None:
        """Warm-start the online models from design-time executions.

        The Oracle sweep already evaluated every training snippet at its
        best configuration (the entry's noise-free ``best_result``), so
        instead of re-running the full per-cluster simulation per snippet we
        re-noise that cached result via
        :meth:`~repro.soc.simulator.SoCSimulator.apply_noise` — bitwise
        identical observations (and identical generator stream) at a
        fraction of the cost.
        """
        for snippet in snippets:
            entry = oracle_table.entry(snippet)
            result = self.simulator.apply_noise(entry.best_result)
            self.power_model.update(result.counters, entry.best_configuration)
            self.performance_model.update(result.counters, entry.best_configuration)

    # ------------------------------------------------------------------ #
    # Policy constructors
    # ------------------------------------------------------------------ #
    def build_online_il_policy(
        self,
        buffer_capacity: int = 100,
        update_epochs: int = 30,
        neighborhood_radius: int = 2,
        isolated: bool = False,
    ) -> OnlineILPolicy:
        """Online-IL policy initialised from the offline policy and models.

        Online adaptation mutates its starting point in place: back-prop
        updates flow into the offline policy's network and counter
        observations into the power/performance models.  With
        ``isolated=True`` the policy instead starts from deep copies of all
        three, leaving the framework's design-time state untouched — this
        is what lets the robustness driver evaluate many scenarios from the
        same trained framework without cross-scenario leakage.
        """
        if self.offline_policy is None:
            raise RuntimeError("call train_offline() before building the online policy")
        offline_policy = self.offline_policy
        power_model = self.power_model
        performance_model = self.performance_model
        if isolated:
            offline_policy = copy.deepcopy(offline_policy)
            power_model = copy.deepcopy(power_model)
            performance_model = copy.deepcopy(performance_model)
        runtime_oracle = RuntimeOracle(
            self.space,
            power_model=power_model,
            performance_model=performance_model,
            neighborhood_radius=neighborhood_radius,
        )
        return OnlineILPolicy(
            self.space,
            offline_policy=offline_policy,
            runtime_oracle=runtime_oracle,
            buffer_capacity=buffer_capacity,
            update_epochs=update_epochs,
        )

    def build_rl_policy(self, **kwargs) -> QLearningController:
        """Table-based Q-learning baseline over the same configuration space."""
        seed = kwargs.pop("seed", int(self._policy_rng.integers(0, 2**31 - 1)))
        return QLearningController(self.space, seed=seed, **kwargs)

    def train_rl_offline(self, policy: QLearningController,
                         workloads: Sequence[WorkloadSpec],
                         snippet_factor: float = 1.0,
                         episodes: int = 3) -> QLearningController:
        """Offline RL pre-training on the design-time workloads.

        Both the RL baseline and the IL policy are "trained offline with
        Mi-Bench applications" before the online phase in the paper's Fig. 3/4
        comparison; this performs the equivalent episodes of experience.
        """
        for _ in range(max(1, int(episodes))):
            for workload in workloads:
                snippets = self.generate_trace(workload, snippet_factor)
                run_policy_on_snippets(
                    self.simulator, self.space, policy, snippets,
                    reset_policy=False,
                )
        return policy

    def build_oracle_policy(self, snippets: Sequence[Snippet]) -> OraclePolicy:
        table = self.build_oracle_for(snippets)
        return OraclePolicy(self.space, table)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate_policy(
        self,
        policy: DRMPolicy,
        workload: WorkloadSpec,
        snippet_factor: float = 1.0,
        with_oracle: bool = True,
        reset_policy: bool = True,
    ) -> PolicyRunResult:
        """Run ``policy`` over one workload and (optionally) its Oracle."""
        snippets = self.generate_trace(workload, snippet_factor)
        return self.evaluate_policy_on_snippets(
            policy, snippets, with_oracle=with_oracle, reset_policy=reset_policy
        )

    def evaluate_policy_on_snippets(
        self,
        policy: DRMPolicy,
        snippets: Sequence[Snippet],
        with_oracle: bool = True,
        reset_policy: bool = True,
    ) -> PolicyRunResult:
        oracle_table = self.build_oracle_for(snippets) if with_oracle else None
        return run_policy_on_snippets(
            self.simulator, self.space, policy, snippets,
            oracle_table=oracle_table, rng=self._misc_rng,
            reset_policy=reset_policy,
        )

    def evaluate_policy_on_scenario(
        self,
        policy: DRMPolicy,
        trace: "ScenarioTrace",
        with_oracle: bool = True,
        reset_policy: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> PolicyRunResult:
        """Run ``policy`` over a scenario trace, honouring throttle windows.

        The Oracle is scenario-aware: during throttle windows the entries
        are computed against the restricted configuration space (via the
        framework's :class:`~repro.core.oracle.OracleCache`, whose keys
        include the restriction).  ``rng`` overrides the framework's
        measurement-noise stream — pass a derived generator to make a run
        independent of what was executed before it.
        """
        from repro.scenarios.runtime import (
            build_scenario_oracle,
            run_policy_on_scenario,
        )
        oracle_table = None
        if with_oracle:
            oracle_table = build_scenario_oracle(
                self.simulator, self.space, trace, self.objective,
                cache=self.oracle_cache,
            )
        return run_policy_on_scenario(
            self.simulator, self.space, policy, trace,
            oracle_table=oracle_table,
            rng=rng if rng is not None else self._misc_rng,
            reset_policy=reset_policy,
        )
