"""Fast-rate frequency controller (the multi-rate controller's inner loop).

The multi-rate scheme of Sec. IV-B manages the slice count at a coarse time
granularity and the operating frequency at a fine granularity "using hardware
support for fast changes in frequency and voltage.  It applies a state-space
control since it is known to be robust for handling discrete control
problems."  The controller below is a discrete integral (state-space)
tracker: it adjusts the OPP index so that the predicted busy time of the next
frame tracks a utilisation set-point below the deadline, with anti-windup on
the integral state and clamping to the valid OPP range.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.frames import FrameResult
from repro.gpu.gpu import GPUSpec


class FastRateFrequencyController:
    """Integral state-space controller for per-frame DVFS corrections."""

    def __init__(
        self,
        gpu: GPUSpec,
        target_fps: float,
        utilization_setpoint: float = 0.90,
        gain: float = 2.0,
        integral_limit: float = 3.0,
    ) -> None:
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if not 0.0 < utilization_setpoint <= 1.0:
            raise ValueError("utilization_setpoint must be in (0, 1]")
        if gain <= 0:
            raise ValueError("gain must be positive")
        self.gpu = gpu
        self.target_fps = float(target_fps)
        self.utilization_setpoint = float(utilization_setpoint)
        self.gain = float(gain)
        self.integral_limit = float(integral_limit)
        self._integral = 0.0

    def reset(self) -> None:
        self._integral = 0.0

    def correction(self, last_result: Optional[FrameResult]) -> int:
        """Return the OPP-index correction (signed integer steps).

        Positive corrections mean "raise the frequency" (the last frame ran
        too close to — or past — the deadline); negative corrections lower it.
        """
        if last_result is None:
            return 0
        deadline = 1.0 / self.target_fps
        utilization = last_result.busy_time_s / deadline
        error = utilization - self.utilization_setpoint
        self._integral += error
        self._integral = max(-self.integral_limit,
                             min(self.integral_limit, self._integral))
        # Deadline miss: force an immediate step up regardless of the integral.
        if utilization > 1.0:
            return max(1, int(round(self.gain * error)))
        raw = self.gain * error + 0.5 * self._integral
        return int(round(raw))

    def apply(self, opp_index: int, last_result: Optional[FrameResult]) -> int:
        """Apply the correction to ``opp_index`` and clamp to the OPP table."""
        corrected = opp_index + self.correction(last_result)
        return self.gpu.opps.clamp_index(corrected)
