"""Dynamic resource-management controllers (paper Section IV).

This package contains the control-policy side of the framework: the common
policy interface, reinforcement-learning baselines (table-based Q-learning
and a deep-Q network), the nonlinear model predictive controller for the GPU
subsystem, its low-overhead explicit approximation, and the multi-rate
(slow slice / fast DVFS) coordination layer.
"""

from repro.control.policy import DRMPolicy, StaticPolicy, RandomPolicy
from repro.control.rl import QLearningController, CounterStateDiscretizer
from repro.control.dqn import DeepQController, ReplayBuffer
from repro.control.nmpc import NMPCGpuController, WorkloadPredictor
from repro.control.explicit_nmpc import ExplicitNMPCGpuController, NMPCSurfaceDataset
from repro.control.multirate import MultiRateGPUController
from repro.control.state_space import FastRateFrequencyController

__all__ = [
    "DRMPolicy",
    "StaticPolicy",
    "RandomPolicy",
    "QLearningController",
    "CounterStateDiscretizer",
    "DeepQController",
    "ReplayBuffer",
    "NMPCGpuController",
    "WorkloadPredictor",
    "ExplicitNMPCGpuController",
    "NMPCSurfaceDataset",
    "MultiRateGPUController",
    "FastRateFrequencyController",
]
