"""Common interface for CPU dynamic-resource-management policies.

Every policy — the Oracle, offline/online IL, RL, and the simple governors —
implements the same decision loop so the experiment runner can swap them
freely:

1. ``decide(counters)`` returns the configuration for the *next* snippet
   based on the counters observed for the previous one;
2. the runner executes the snippet at that configuration;
3. ``observe(result)`` feeds the outcome back (used by learning policies).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult
from repro.utils.rng import SeedLike, make_rng


class DRMPolicy(abc.ABC):
    """Base class for snippet-level DRM policies."""

    def __init__(self, space: ConfigurationSpace) -> None:
        self.space = space
        self.current = space.default_configuration()

    def reset(self, configuration: Optional[SoCConfiguration] = None) -> None:
        """Reset the policy's runtime state before a new run."""
        self.current = configuration or self.space.default_configuration()

    @abc.abstractmethod
    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        """Return the configuration for the next snippet.

        ``counters`` is ``None`` for the very first snippet of a run (no
        observation is available yet); policies should fall back to their
        current/default configuration in that case.
        """

    def observe(self, result: SnippetResult) -> None:
        """Consume the result of the snippet that was just executed."""
        self.current = result.configuration

    @property
    def name(self) -> str:
        return type(self).__name__


class StaticPolicy(DRMPolicy):
    """Always selects one fixed configuration (useful baseline and test stub)."""

    def __init__(self, space: ConfigurationSpace,
                 configuration: Optional[SoCConfiguration] = None) -> None:
        super().__init__(space)
        self.configuration = configuration or space.default_configuration()
        if not space.contains(self.configuration):
            raise ValueError("configuration is not part of the configuration space")

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        return self.configuration


class GovernorPolicy(DRMPolicy):
    """Adapter running a :mod:`repro.soc.governors` governor as a DRM policy.

    Governors expose ``reset``/``decide`` but expect real counters (they
    are utilisation driven) and do not implement ``observe``; this adapter
    handles the first no-observation step and keeps the governor's notion
    of the current configuration in sync with what actually executed
    (which may differ under scenario throttling).
    """

    def __init__(self, governor) -> None:
        super().__init__(governor.space)
        self.governor = governor

    def reset(self, configuration: Optional[SoCConfiguration] = None) -> None:
        super().reset(configuration)
        self.governor.reset(configuration)

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None:
            return self.current
        self.current = self.governor.decide(counters)
        return self.current

    def observe(self, result: SnippetResult) -> None:
        super().observe(result)
        self.governor.current = result.configuration

    @property
    def name(self) -> str:
        return f"governor-{type(self.governor).__name__}"


class RandomPolicy(DRMPolicy):
    """Selects a uniformly random configuration each snippet (exploration floor)."""

    def __init__(self, space: ConfigurationSpace, seed: SeedLike = None) -> None:
        super().__init__(space)
        self.rng = make_rng(seed)

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        self.current = self.space.random_configuration(self.rng)
        return self.current
