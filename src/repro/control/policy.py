"""Common interface for CPU dynamic-resource-management policies.

Every policy — the Oracle, offline/online IL, RL, and the simple governors —
implements the same decision loop so the experiment runner can swap them
freely:

1. ``decide(counters)`` returns the configuration for the *next* snippet
   based on the counters observed for the previous one;
2. the runner executes the snippet at that configuration;
3. ``observe(result)`` feeds the outcome back (used by learning policies).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult
from repro.soc.snippet import Snippet
from repro.utils.rng import SeedLike, make_rng

#: Result of a batched fleet decide: the decided configurations plus their
#: indices in the policy's space, as two parallel lists (an index is
#: ``None`` when unknown, e.g. a carried-over initial configuration from
#: outside the space).
FleetDecisions = Tuple[List[SoCConfiguration], List[Optional[int]]]


class DRMPolicy(abc.ABC):
    """Base class for snippet-level DRM policies."""

    def __init__(self, space: ConfigurationSpace) -> None:
        self.space = space
        self.current = space.default_configuration()

    def reset(self, configuration: Optional[SoCConfiguration] = None) -> None:
        """Reset the policy's runtime state before a new run."""
        self.current = configuration or self.space.default_configuration()

    @abc.abstractmethod
    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        """Return the configuration for the next snippet.

        ``counters`` is ``None`` for the very first snippet of a run (no
        observation is available yet); policies should fall back to their
        current/default configuration in that case.
        """

    def observe(self, result: SnippetResult) -> None:
        """Consume the result of the snippet that was just executed."""
        self.current = result.configuration

    @property
    def name(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------ #
    # Fleet batching capability
    # ------------------------------------------------------------------ #
    def fleet_decide_key(self) -> Optional[Tuple]:
        """Grouping key for cross-session batched decides (fleet lockstep).

        Policies sharing a (non-``None``) key can have their per-step
        decisions computed together by one :meth:`fleet_decide` call
        instead of per-policy :meth:`decide` calls.  The contract is
        strict: the batched path must reproduce every policy's scalar
        decision — and its state mutations — exactly, so a lockstep fleet
        stays bitwise identical to independent sequential runs.  The
        default is ``None``: not batchable, the fleet driver falls back to
        per-session scalar stepping.
        """
        return None

    @staticmethod
    def fleet_decide(
        policies: Sequence["DRMPolicy"],
        counters: Sequence[Optional[PerformanceCounters]],
        snippets: Sequence[Snippet],
        group_state: dict,
    ) -> FleetDecisions:
        """Batched decide for a group of policies sharing a fleet key.

        ``counters[i]`` is what ``policies[i].decide`` would have received
        (``None`` on a session's first step) and ``snippets[i]`` is the
        snippet about to execute.  ``group_state`` is a mutable dict owned
        by the fleet driver that persists across steps for this group —
        implementations may memoise adopted cross-device stacks there
        (stateless policies ignore it).  Only called on groups whose
        members all returned the same non-``None`` :meth:`fleet_decide_key`.
        """
        raise NotImplementedError

    def fleet_observe_key(self) -> Optional[Tuple]:
        """Grouping key for cross-session batched observes (fleet lockstep).

        The observe-side twin of :meth:`fleet_decide_key`: policies sharing
        a non-``None`` key can have their per-step :meth:`observe` calls —
        including any model updates they trigger — computed together by one
        :meth:`fleet_observe` call.  Same strict contract: batched state
        after the call must be bitwise identical to per-policy scalar
        observes.  Default ``None``: observe stays scalar.
        """
        return None

    @staticmethod
    def fleet_observe(
        policies: Sequence["DRMPolicy"],
        steps: Sequence[object],
        results: Sequence[SnippetResult],
        group_state: dict,
    ) -> None:
        """Batched observe for a group of policies sharing an observe key.

        ``steps[i]`` is the session step (carrying ``configuration_index``
        when known) whose execution produced ``results[i]``, exactly what
        ``policies[i].observe`` would have consumed.  ``group_state`` is
        the same persistent dict handed to :meth:`fleet_decide` for this
        group of sessions.
        """
        raise NotImplementedError


class StaticPolicy(DRMPolicy):
    """Always selects one fixed configuration (useful baseline and test stub)."""

    def __init__(self, space: ConfigurationSpace,
                 configuration: Optional[SoCConfiguration] = None) -> None:
        super().__init__(space)
        self.configuration = configuration or space.default_configuration()
        if not space.contains(self.configuration):
            raise ValueError("configuration is not part of the configuration space")
        self._fleet_index = space.index_of(self.configuration)

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        return self.configuration

    def fleet_decide_key(self) -> Optional[Tuple]:
        if type(self) is not StaticPolicy:
            # A subclass may override decide(); batching would silently
            # replay the base rule instead, so only the exact type batches.
            return None
        # Content key, not id(space): process-stable, so content-equal
        # spaces group together and sharded fleets key identically.
        return (type(self).__name__, self.space.content_key())

    @staticmethod
    def fleet_decide(
        policies: Sequence[DRMPolicy],
        counters: Sequence[Optional[PerformanceCounters]],
        snippets: Sequence[Snippet],
        group_state: dict,
    ) -> FleetDecisions:
        # The scalar decide neither reads counters nor mutates any state.
        return ([policy.configuration for policy in policies],  # type: ignore[attr-defined]
                [policy._fleet_index for policy in policies])  # type: ignore[attr-defined]


class GovernorPolicy(DRMPolicy):
    """Adapter running a :mod:`repro.soc.governors` governor as a DRM policy.

    Governors expose ``reset``/``decide`` but expect real counters (they
    are utilisation driven) and do not implement ``observe``; this adapter
    handles the first no-observation step and keeps the governor's notion
    of the current configuration in sync with what actually executed
    (which may differ under scenario throttling).
    """

    def __init__(self, governor) -> None:
        super().__init__(governor.space)
        self.governor = governor

    def reset(self, configuration: Optional[SoCConfiguration] = None) -> None:
        super().reset(configuration)
        self.governor.reset(configuration)

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None:
            return self.current
        self.current = self.governor.decide(counters)
        return self.current

    def observe(self, result: SnippetResult) -> None:
        # Inlined DRMPolicy.observe: both the policy's and the governor's
        # notion of the current configuration track what actually executed.
        configuration = result.configuration
        self.current = configuration
        self.governor.current = configuration

    @property
    def name(self) -> str:
        return f"governor-{type(self.governor).__name__}"

    #: Utilisation counter read per cluster (mirrors
    #: :meth:`~repro.soc.governors.Governor._cluster_utilization`).
    _UTILIZATION_ATTR = {
        "big": "big_cluster_utilization",
        "little": "little_cluster_utilization",
    }

    def fleet_decide_key(self) -> Optional[Tuple]:
        if type(self) is not GovernorPolicy:
            # A subclass may override decide(); batching would silently
            # replay the base rule instead, so only the exact type batches.
            return None
        governor = self.governor
        # decide_batch must come from the same class that defines the
        # scalar decide rule it mirrors — a governor subclass overriding
        # decide() without supplying its own decide_batch falls back to
        # scalar stepping instead of silently replaying the parent's rule.
        decide_owner = next(cls for cls in type(governor).__mro__
                            if "decide" in cls.__dict__)
        if "decide_batch" not in decide_owner.__dict__:
            return None
        if self.space.gated_clusters:
            # The scalar rule carries the current core counts through; the
            # batched path assumes OPP indices identify configurations.
            return None
        if any(name not in self._UTILIZATION_ATTR
               for name in self.space.cluster_order):
            return None
        return (type(self).__name__, type(governor).__name__,
                governor.fleet_params(), self.space.content_key())

    @staticmethod
    def fleet_decide(
        policies: Sequence[DRMPolicy],
        counters: Sequence[Optional[PerformanceCounters]],
        snippets: Sequence[Snippet],
        group_state: dict,
    ) -> FleetDecisions:
        """Vectorized governor decisions for one lockstep group.

        Mirrors the scalar path exactly: the governor rule produces raw
        per-cluster indices (:meth:`~repro.soc.governors.Governor
        .decide_batch`), which are clamped into the platform's full OPP
        range, validated against the space (falling back to the default
        configuration when an active cap excludes the combination — the
        ``_with_opp_indices`` contains-check), and written back into each
        governor's ``current`` state.  Devices with no counters yet keep
        their current configuration without touching the governor, and
        devices whose governor state wandered outside the space take the
        scalar path row-wise.
        """
        space = policies[0].space
        lookup = space.opp_lookup_table()
        assert lookup is not None  # guaranteed by fleet_decide_key
        cluster_order = space.cluster_order
        out_configs: List[Optional[SoCConfiguration]] = [None] * len(policies)
        out_indices: List[Optional[int]] = [None] * len(policies)
        live: List[int] = []
        live_current: List[int] = []
        for i, policy in enumerate(policies):
            governor = policy.governor  # type: ignore[attr-defined]
            if counters[i] is None:
                # GovernorPolicy.decide(None) returns self.current as-is.
                current = policy.current
                out_configs[i] = current
                out_indices[i] = space._index.get(current)
                continue
            # The previous batched decide memoises (config, index); the
            # identity check proves the governor state is still exactly
            # that object, so the space lookup is skipped on the hot path.
            memo = policy.__dict__.get("_fleet_state")
            if memo is not None and memo[0] is governor.current:
                live.append(i)
                live_current.append(memo[1])
                continue
            index = space._index.get(governor.current)
            if index is None:
                # Governor state wandered outside the space (e.g. a reset
                # with a foreign configuration): scalar path, row-wise.
                out_configs[i] = policy.decide(counters[i])
            else:
                live.append(i)
                live_current.append(index)
        if not live:
            return out_configs, out_indices  # type: ignore[return-value]
        utilization = {
            name: np.array([
                getattr(counters[i], GovernorPolicy._UTILIZATION_ATTR[name])
                for i in live
            ])
            for name in cluster_order
        }
        soa = space.soa_view()
        current_rows = np.array(live_current, dtype=np.intp)
        current_indices = {
            name: soa.cluster(name).opp_index[current_rows]
            for name in cluster_order
        }
        raw = policies[0].governor.decide_batch(  # type: ignore[attr-defined]
            utilization, current_indices
        )
        contained = np.ones(len(live), dtype=bool)
        clamped = []
        for name in cluster_order:
            spec = space.platform.cluster(name)
            indices = np.clip(raw[name].astype(np.intp), 0, len(spec.opps) - 1)
            clamped.append(indices)
            contained &= indices <= space._max_opp_index(name)
        config_indices = lookup[tuple(clamped)]
        config_indices = np.where(contained, config_indices,
                                  space.default_index())
        configs = space._configs
        index_list = config_indices.tolist()
        for row, i in enumerate(live):
            policy = policies[i]
            index = index_list[row]
            config = configs[index]
            policy.governor.current = config  # type: ignore[attr-defined]
            policy.current = config
            policy._fleet_state = (config, index)  # type: ignore[attr-defined]
            out_configs[i] = config
            out_indices[i] = index
        return out_configs, out_indices  # type: ignore[return-value]


class RandomPolicy(DRMPolicy):
    """Selects a uniformly random configuration each snippet (exploration floor)."""

    def __init__(self, space: ConfigurationSpace, seed: SeedLike = None) -> None:
        super().__init__(space)
        self.rng = make_rng(seed)

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        self.current = self.space.random_configuration(self.rng)
        return self.current
