"""Nonlinear model predictive control for the GPU subsystem (Sec. IV-B).

The controller chooses, before each frame, the GPU operating point and the
number of active slices that minimise the predicted energy of the upcoming
frame subject to meeting the FPS deadline.  The prediction uses (a) a
workload predictor for the next frame's shader work and memory traffic, and
(b) the GPU's frame-time / power laws (either the true :class:`GPUSpec`
model or learned equivalents).  The constrained minimisation is solved
exactly by enumerating the discrete configuration set — this is the
"expensive" NMPC whose control surface the explicit controller approximates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.gpu.frames import Frame, FrameResult
from repro.gpu.gpu import GPUConfiguration, GPUSpec


class WorkloadPredictor:
    """Predicts the next frame's work and memory traffic from recent frames.

    The predictor keeps an exponentially weighted moving average plus a
    variability estimate; the prediction adds ``margin_sigma`` standard
    deviations of headroom so that occasional heavy frames still meet the
    deadline.  This mirrors how the sensitivity/performance models of
    Sec. III feed the predictive controller.
    """

    def __init__(self, smoothing: float = 0.3, margin_sigma: float = 2.0,
                 window: int = 16) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if margin_sigma < 0:
            raise ValueError("margin_sigma must be non-negative")
        self.smoothing = float(smoothing)
        self.margin_sigma = float(margin_sigma)
        self._work_average: Optional[float] = None
        self._memory_average: Optional[float] = None
        self._recent_work: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._work_average = None
        self._memory_average = None
        self._recent_work.clear()

    def observe(self, work_cycles: float, memory_bytes: float) -> None:
        if self._work_average is None:
            self._work_average = float(work_cycles)
            self._memory_average = float(memory_bytes)
        else:
            s = self.smoothing
            self._work_average = (1 - s) * self._work_average + s * float(work_cycles)
            self._memory_average = (1 - s) * self._memory_average + s * float(memory_bytes)
        self._recent_work.append(float(work_cycles))

    @property
    def has_observations(self) -> bool:
        return self._work_average is not None

    def predict(self) -> Tuple[float, float]:
        """Return (predicted work cycles, predicted memory bytes) with margin."""
        if self._work_average is None or self._memory_average is None:
            raise RuntimeError("predictor has no observations yet")
        work = self._work_average
        if len(self._recent_work) >= 2:
            std = float(np.std(np.array(self._recent_work)))
            work += self.margin_sigma * std
        return work, self._memory_average


class NMPCGpuController:
    """Receding-horizon, exhaustive-search NMPC over the GPU knobs."""

    def __init__(
        self,
        gpu: GPUSpec,
        target_fps: float,
        predictor: Optional[WorkloadPredictor] = None,
        deadline_margin: float = 0.05,
        horizon: int = 1,
        slice_switch_energy_j: float = 0.002,
    ) -> None:
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if not 0.0 <= deadline_margin < 1.0:
            raise ValueError("deadline_margin must be in [0, 1)")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.gpu = gpu
        self.target_fps = float(target_fps)
        self.predictor = predictor or WorkloadPredictor()
        self.deadline_margin = float(deadline_margin)
        self.horizon = int(horizon)
        self.slice_switch_energy_j = float(slice_switch_energy_j)
        self.current = GPUConfiguration(opp_index=len(gpu.opps) - 1,
                                        active_slices=gpu.n_slices)

    def reset(self) -> None:
        self.predictor.reset()
        self.current = GPUConfiguration(opp_index=len(self.gpu.opps) - 1,
                                        active_slices=self.gpu.n_slices)

    # ------------------------------------------------------------------ #
    def predicted_energy_j(self, config: GPUConfiguration, work_cycles: float,
                           memory_bytes: float) -> float:
        """Predicted GPU energy of one frame at ``config`` (race-to-idle)."""
        deadline = 1.0 / self.target_fps
        busy = self.gpu.busy_time_s(config, work_cycles, memory_bytes)
        frame_time = max(busy, deadline)
        idle = frame_time - busy
        energy = (
            self.gpu.active_power_w(config) * busy
            + self.gpu.idle_power_w_at(config) * idle
        )
        if config.active_slices != self.current.active_slices:
            energy += self.slice_switch_energy_j * abs(
                config.active_slices - self.current.active_slices
            )
        return energy

    def solve(self, work_cycles: float, memory_bytes: float) -> GPUConfiguration:
        """Exhaustively minimise predicted energy subject to the deadline."""
        deadline = (1.0 / self.target_fps) * (1.0 - self.deadline_margin)
        feasible: List[Tuple[float, GPUConfiguration]] = []
        infeasible: List[Tuple[float, GPUConfiguration]] = []
        for config in self.gpu.configurations():
            busy = self.gpu.busy_time_s(config, work_cycles, memory_bytes)
            energy = self.predicted_energy_j(config, work_cycles, memory_bytes)
            if busy <= deadline:
                feasible.append((energy, config))
            else:
                # Track the fastest configuration as a fallback when nothing
                # meets the deadline (overload): minimise the busy time.
                infeasible.append((busy, config))
        if feasible:
            feasible.sort(key=lambda item: (item[0], item[1].opp_index,
                                            item[1].active_slices))
            return feasible[0][1]
        infeasible.sort(key=lambda item: item[0])
        return infeasible[0][1]

    # ------------------------------------------------------------------ #
    # GPUController protocol
    # ------------------------------------------------------------------ #
    def decide(self, upcoming_frame: Optional[Frame] = None) -> GPUConfiguration:
        """Choose the configuration for the next frame.

        The true upcoming frame (if provided by the simulator) is *not*
        inspected — the controller acts on its workload predictor, exactly
        like the hardware implementation would.
        """
        if not self.predictor.has_observations:
            return self.current
        work, memory = self.predictor.predict()
        self.current = self.solve(work, memory)
        return self.current

    def observe(self, result: FrameResult) -> None:
        self.predictor.observe(result.frame.work_cycles, result.frame.memory_bytes)
