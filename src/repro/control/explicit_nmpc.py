"""Explicit nonlinear MPC for GPU power management (Sec. IV-B).

Solving the constrained NMPC problem online is too expensive for firmware, so
the explicit variant approximates the *surface* of the NMPC control law with
simple regression models: offline, the NMPC problem is solved for a set of
low-discrepancy samples of the predicted-workload state space; regression
models are then fitted mapping the state to the optimal frequency index and
slice count.  At runtime the controller only evaluates the two regressors
(a handful of multiply-accumulates), achieving near-optimal control at a tiny
fraction of the cost — the property Figure 5 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.control.nmpc import NMPCGpuController, WorkloadPredictor
from repro.gpu.frames import Frame, FrameResult
from repro.gpu.gpu import GPUConfiguration, GPUSpec
from repro.ml.base import Regressor
from repro.ml.tree import DecisionTreeRegressor


def halton_sequence(n_points: int, n_dims: int) -> np.ndarray:
    """Low-discrepancy Halton samples in the unit hypercube.

    Explicit-NMPC approaches sample the state space with low-discrepancy
    sequences [20] so the regression surface is covered uniformly with few
    samples.
    """
    if n_points < 1 or n_dims < 1:
        raise ValueError("n_points and n_dims must be >= 1")
    primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
    if n_dims > len(primes):
        raise ValueError(f"at most {len(primes)} dimensions supported")

    def radical_inverse(index: int, base: int) -> float:
        result = 0.0
        fraction = 1.0 / base
        while index > 0:
            result += (index % base) * fraction
            index //= base
            fraction /= base
        return result

    samples = np.empty((n_points, n_dims))
    for i in range(n_points):
        for d in range(n_dims):
            samples[i, d] = radical_inverse(i + 1, primes[d])
    return samples


@dataclass
class NMPCSurfaceDataset:
    """Samples of the NMPC control surface used to train the explicit models."""

    states: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    opp_indices: np.ndarray = field(default_factory=lambda: np.empty(0))
    slice_counts: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __len__(self) -> int:
        return self.states.shape[0]


class ExplicitNMPCGpuController:
    """Regression approximation of the NMPC GPU control law."""

    def __init__(
        self,
        gpu: GPUSpec,
        target_fps: float,
        predictor: Optional[WorkloadPredictor] = None,
        deadline_margin: float = 0.05,
        n_surface_samples: int = 400,
        opp_model: Optional[Regressor] = None,
        slice_model: Optional[Regressor] = None,
    ) -> None:
        if n_surface_samples < 10:
            raise ValueError("n_surface_samples must be >= 10")
        self.gpu = gpu
        self.target_fps = float(target_fps)
        self.predictor = predictor or WorkloadPredictor()
        self.deadline_margin = float(deadline_margin)
        self.n_surface_samples = int(n_surface_samples)
        self.opp_model = opp_model or DecisionTreeRegressor(max_depth=10,
                                                            min_samples_leaf=1,
                                                            min_samples_split=2)
        self.slice_model = slice_model or DecisionTreeRegressor(max_depth=10,
                                                                min_samples_leaf=1,
                                                                min_samples_split=2)
        self.dataset: Optional[NMPCSurfaceDataset] = None
        self._trained = False
        self.current = GPUConfiguration(opp_index=len(gpu.opps) - 1,
                                        active_slices=gpu.n_slices)
        self._nmpc = NMPCGpuController(
            gpu, target_fps, predictor=WorkloadPredictor(),
            deadline_margin=deadline_margin,
        )

    # ------------------------------------------------------------------ #
    # Offline surface construction
    # ------------------------------------------------------------------ #
    def _state_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Bounds of the (work, memory) state space covered by the samples."""
        deadline = 1.0 / self.target_fps
        max_work = self.gpu.max_throughput_cycles_per_s() * deadline * 1.2
        max_memory = self.gpu.memory_bandwidth_gbps * 1e9 * deadline * 0.6
        low = np.array([max_work * 0.01, 0.0])
        high = np.array([max_work, max_memory])
        return low, high

    def build_surface(self) -> NMPCSurfaceDataset:
        """Sample the NMPC law over the workload state space."""
        low, high = self._state_bounds()
        unit = halton_sequence(self.n_surface_samples, 2)
        states = low + unit * (high - low)
        opp_indices = np.empty(len(states))
        slice_counts = np.empty(len(states))
        for i, (work, memory) in enumerate(states):
            config = self._nmpc.solve(float(work), float(memory))
            opp_indices[i] = config.opp_index
            slice_counts[i] = config.active_slices
        self.dataset = NMPCSurfaceDataset(states=states, opp_indices=opp_indices,
                                          slice_counts=slice_counts)
        return self.dataset

    def fit(self, dataset: Optional[NMPCSurfaceDataset] = None) -> "ExplicitNMPCGpuController":
        """Fit the explicit regression models to the NMPC surface."""
        data = dataset or self.dataset or self.build_surface()
        self.dataset = data
        self.opp_model.fit(data.states, data.opp_indices)
        self.slice_model.fit(data.states, data.slice_counts)
        self._trained = True
        return self

    # ------------------------------------------------------------------ #
    # Runtime control law
    # ------------------------------------------------------------------ #
    def control_law(self, work_cycles: float, memory_bytes: float) -> GPUConfiguration:
        """Evaluate the explicit (regression) control law at one state."""
        if not self._trained:
            self.fit()
        state = np.array([[work_cycles, memory_bytes]], dtype=float)
        opp_index = int(round(float(self.opp_model.predict(state)[0])))
        slices = int(round(float(self.slice_model.predict(state)[0])))
        opp_index = self.gpu.opps.clamp_index(opp_index)
        slices = max(1, min(self.gpu.n_slices, slices))
        config = GPUConfiguration(opp_index=opp_index, active_slices=slices)
        # Feasibility guard: if the regression under-provisions, step up the
        # frequency until the predicted busy time fits in the deadline.
        deadline = (1.0 / self.target_fps) * (1.0 - self.deadline_margin)
        while (self.gpu.busy_time_s(config, work_cycles, memory_bytes) > deadline
               and config.opp_index < len(self.gpu.opps) - 1):
            config = GPUConfiguration(opp_index=config.opp_index + 1,
                                      active_slices=config.active_slices)
        if (self.gpu.busy_time_s(config, work_cycles, memory_bytes) > deadline
                and config.active_slices < self.gpu.n_slices):
            config = GPUConfiguration(opp_index=config.opp_index,
                                      active_slices=self.gpu.n_slices)
        return config

    # ------------------------------------------------------------------ #
    # GPUController protocol
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.predictor.reset()
        self.current = GPUConfiguration(opp_index=len(self.gpu.opps) - 1,
                                        active_slices=self.gpu.n_slices)
        if not self._trained:
            self.fit()

    def decide(self, upcoming_frame: Optional[Frame] = None) -> GPUConfiguration:
        if not self.predictor.has_observations:
            return self.current
        work, memory = self.predictor.predict()
        self.current = self.control_law(work, memory)
        return self.current

    def observe(self, result: FrameResult) -> None:
        self.predictor.observe(result.frame.work_cycles, result.frame.memory_bytes)

    # ------------------------------------------------------------------ #
    def surface_disagreement(self, n_probe: int = 200) -> float:
        """Fraction of probe states where the explicit law differs from NMPC.

        A small disagreement confirms the "near optimal control" claim of the
        explicit approximation; used by the ablation benchmarks.
        """
        if not self._trained:
            self.fit()
        low, high = self._state_bounds()
        unit = halton_sequence(n_probe, 2) * 0.97 + 0.015
        states = low + unit * (high - low)
        mismatches = 0
        for work, memory in states:
            exact = self._nmpc.solve(float(work), float(memory))
            approx = self.control_law(float(work), float(memory))
            if (exact.opp_index, exact.active_slices) != (
                approx.opp_index, approx.active_slices
            ):
                mismatches += 1
        return mismatches / len(states)
