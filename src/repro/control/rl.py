"""Table-based Q-learning DRM controller (the paper's RL baseline).

Section IV-A2 discusses reinforcement learning for DRM and its drawbacks:
the reward-driven trial-and-error process needs a lot of exploration, so the
policy converges slowly when the workload changes — which is exactly what
Figures 3 and 4 show.  This module implements the table-based variant: the
counter feature vector is discretised into a small number of bins per
feature, actions are the SoC configurations, and the Q-table is updated with
the standard temporal-difference rule using a negative energy-per-instruction
reward.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.control.policy import DRMPolicy
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult
from repro.utils.rng import SeedLike, make_rng


class CounterStateDiscretizer:
    """Discretises counter feature vectors into small integer state tuples.

    Only a subset of the Table-I features is used (CPI, L2 MPKI and the big
    cluster utilisation by default) so that the Q-table stays a realistic
    size — the paper notes the storage problem of table-based RL, and this
    reproduction keeps the table small rather than unmanageably exact.
    """

    #: Indices into PerformanceCounters.feature_vector(): CPI, L2 MPKI, big util.
    DEFAULT_FEATURE_INDICES = (0, 2, 6)

    def __init__(
        self,
        n_bins: int = 4,
        feature_indices: Tuple[int, ...] = DEFAULT_FEATURE_INDICES,
        feature_ranges: Optional[List[Tuple[float, float]]] = None,
    ) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = int(n_bins)
        self.feature_indices = tuple(feature_indices)
        if feature_ranges is None:
            # Generous default ranges for CPI, MPKI and utilisation features.
            defaults = {0: (0.3, 6.0), 2: (0.0, 25.0), 6: (0.0, 1.0)}
            feature_ranges = [defaults.get(i, (0.0, 10.0)) for i in self.feature_indices]
        if len(feature_ranges) != len(self.feature_indices):
            raise ValueError("feature_ranges length must match feature_indices")
        self.feature_ranges = [(float(lo), float(hi)) for lo, hi in feature_ranges]
        for lo, hi in self.feature_ranges:
            if hi <= lo:
                raise ValueError("each feature range must have hi > lo")

    @property
    def n_states(self) -> int:
        return self.n_bins ** len(self.feature_indices)

    def discretize(self, counters: PerformanceCounters) -> int:
        """Return the integer state index for a counter observation."""
        features = counters.feature_vector()
        state = 0
        for position, (index, (lo, hi)) in enumerate(
            zip(self.feature_indices, self.feature_ranges)
        ):
            value = float(features[index])
            fraction = (value - lo) / (hi - lo)
            bin_index = int(np.clip(np.floor(fraction * self.n_bins), 0,
                                    self.n_bins - 1))
            state += bin_index * (self.n_bins**position)
        return state


class QLearningController(DRMPolicy):
    """Epsilon-greedy table-based Q-learning over SoC configurations."""

    def __init__(
        self,
        space: ConfigurationSpace,
        discretizer: Optional[CounterStateDiscretizer] = None,
        learning_rate: float = 0.1,
        discount: float = 0.6,
        epsilon: float = 0.15,
        epsilon_decay: float = 0.999,
        min_epsilon: float = 0.02,
        reward_scale: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(space)
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.discretizer = discretizer or CounterStateDiscretizer()
        self.learning_rate = float(learning_rate)
        self.discount = float(discount)
        self.epsilon = float(epsilon)
        self.initial_epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.min_epsilon = float(min_epsilon)
        self.reward_scale = float(reward_scale)
        self.rng = make_rng(seed)
        self.n_actions = len(space)
        self.q_table = np.zeros((self.discretizer.n_states, self.n_actions))
        self._last_state: Optional[int] = None
        self._last_action: Optional[int] = None
        self.n_updates = 0

    # ------------------------------------------------------------------ #
    def reset(self, configuration: Optional[SoCConfiguration] = None,
              reset_table: bool = False, reset_epsilon: bool = False) -> None:
        super().reset(configuration)
        self._last_state = None
        self._last_action = None
        if reset_table:
            self.q_table.fill(0.0)
            self.n_updates = 0
        if reset_epsilon:
            self.epsilon = self.initial_epsilon

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None:
            self._last_state = None
            self._last_action = self.space.index_of(self.current)
            return self.current
        state = self.discretizer.discretize(counters)
        if self.rng.random() < self.epsilon:
            action = int(self.rng.integers(0, self.n_actions))
        else:
            action = int(np.argmax(self.q_table[state]))
        self._last_state = state
        self._last_action = action
        self.current = self.space[action]
        return self.current

    @staticmethod
    def reward_from_result(result: SnippetResult) -> float:
        """Negative energy per instruction (nJ), the optimisation objective."""
        return -result.energy_per_instruction_nj

    def observe(self, result: SnippetResult) -> None:
        super().observe(result)
        if self._last_action is None:
            return
        next_state = self.discretizer.discretize(result.counters)
        reward = self.reward_from_result(result) * self.reward_scale
        if self._last_state is None:
            # First decision of a run: no source state recorded, skip TD update.
            self._last_state = next_state
            return
        best_next = float(np.max(self.q_table[next_state]))
        td_target = reward + self.discount * best_next
        td_error = td_target - self.q_table[self._last_state, self._last_action]
        self.q_table[self._last_state, self._last_action] += self.learning_rate * td_error
        self.epsilon = max(self.min_epsilon, self.epsilon * self.epsilon_decay)
        self.n_updates += 1

    # ------------------------------------------------------------------ #
    def greedy_action(self, counters: PerformanceCounters) -> SoCConfiguration:
        """The configuration the current Q-table considers best (no exploration)."""
        state = self.discretizer.discretize(counters)
        return self.space[int(np.argmax(self.q_table[state]))]

    def table_size_bytes(self) -> int:
        """Storage footprint of the Q-table (the paper's practicality concern)."""
        return int(self.q_table.nbytes)

    def visited_state_fraction(self) -> float:
        """Fraction of states with at least one non-zero Q entry."""
        visited = np.any(self.q_table != 0.0, axis=1)
        return float(np.mean(visited))
