"""Multi-rate GPU power-management controller (Sec. IV-B).

"A multi-rate control is generally required to handle the differences in the
time granularity of the control knobs: e.g., changing the number of active
slices takes significantly longer time and requires more energy than changing
the frequency and voltage values."

The controller combines:

* a **slow-rate** path that re-evaluates the slice count (and the coarse
  operating point) once every ``slow_period`` frames using the explicit-NMPC
  control law over the predicted workload, and
* a **fast-rate** path that corrects the operating frequency every frame with
  the state-space integral controller, reacting to per-frame prediction error
  without touching the slice configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.control.explicit_nmpc import ExplicitNMPCGpuController
from repro.control.nmpc import WorkloadPredictor
from repro.control.state_space import FastRateFrequencyController
from repro.gpu.frames import Frame, FrameResult
from repro.gpu.gpu import GPUConfiguration, GPUSpec


class MultiRateGPUController:
    """Coordinated slow-rate (slices) and fast-rate (DVFS) GPU controller."""

    def __init__(
        self,
        gpu: GPUSpec,
        target_fps: float,
        slow_period: int = 16,
        deadline_margin: float = 0.10,
        predictor: Optional[WorkloadPredictor] = None,
        explicit_controller: Optional[ExplicitNMPCGpuController] = None,
        fast_controller: Optional[FastRateFrequencyController] = None,
    ) -> None:
        if slow_period < 1:
            raise ValueError("slow_period must be >= 1")
        self.gpu = gpu
        self.target_fps = float(target_fps)
        self.slow_period = int(slow_period)
        self.predictor = predictor or WorkloadPredictor()
        self.explicit = explicit_controller or ExplicitNMPCGpuController(
            gpu, target_fps, deadline_margin=deadline_margin,
            predictor=self.predictor,
        )
        self.fast = fast_controller or FastRateFrequencyController(
            gpu, target_fps, utilization_setpoint=1.0 - deadline_margin - 0.05,
        )
        self.current = GPUConfiguration(opp_index=len(gpu.opps) - 1,
                                        active_slices=gpu.n_slices)
        self._frame_counter = 0
        self._last_result: Optional[FrameResult] = None

    def reset(self) -> None:
        self.predictor.reset()
        self.fast.reset()
        self.explicit.reset()
        self.current = GPUConfiguration(opp_index=len(self.gpu.opps) - 1,
                                        active_slices=self.gpu.n_slices)
        self._frame_counter = 0
        self._last_result = None

    def decide(self, upcoming_frame: Optional[Frame] = None) -> GPUConfiguration:
        if not self.predictor.has_observations:
            self._frame_counter += 1
            return self.current
        work, memory = self.predictor.predict()
        if self._frame_counter % self.slow_period == 0:
            # Slow-rate decision: slice count and coarse operating point.
            slow_config = self.explicit.control_law(work, memory)
            self.current = slow_config
        # Fast-rate decision: per-frame frequency correction around the
        # slow-rate operating point, keeping the slice count fixed.
        corrected_opp = self.fast.apply(self.current.opp_index, self._last_result)
        self.current = GPUConfiguration(opp_index=corrected_opp,
                                        active_slices=self.current.active_slices)
        self._frame_counter += 1
        return self.current

    def observe(self, result: FrameResult) -> None:
        self.predictor.observe(result.frame.work_cycles, result.frame.memory_bytes)
        self._last_result = result
