"""Deep Q-network DRM controller.

The paper cites deep-Q-learning based resource management [14] and argues it
is unsuitable for runtime SoC control because of slow, data-hungry
convergence and reward-design difficulty.  This controller implements the
classic DQN recipe on top of the numpy MLP: an online Q-network, a periodically
synchronised target network, an experience replay buffer and epsilon-greedy
exploration.  It is used in ablation benchmarks alongside the table-based RL
baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.control.policy import DRMPolicy
from repro.ml.mlp import MLPRegressor
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult
from repro.utils.rng import SeedLike, make_rng


@dataclass
class Transition:
    """One experience tuple stored in the replay buffer."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray


class ReplayBuffer:
    """Fixed-capacity FIFO experience replay buffer."""

    def __init__(self, capacity: int = 2000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._storage: Deque[Transition] = deque(maxlen=capacity)

    def push(self, transition: Transition) -> None:
        self._storage.append(transition)

    def __len__(self) -> int:
        return len(self._storage)

    def sample(self, batch_size: int, rng: np.random.Generator) -> List[Transition]:
        if len(self._storage) == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = rng.integers(0, len(self._storage), size=min(batch_size, len(self._storage)))
        return [self._storage[int(i)] for i in indices]


class DeepQController(DRMPolicy):
    """DQN controller over the SoC configuration space."""

    def __init__(
        self,
        space: ConfigurationSpace,
        hidden_sizes=(32, 32),
        learning_rate: float = 5e-3,
        discount: float = 0.6,
        epsilon: float = 0.2,
        epsilon_decay: float = 0.995,
        min_epsilon: float = 0.02,
        batch_size: int = 32,
        replay_capacity: int = 2000,
        target_sync_interval: int = 50,
        train_interval: int = 4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(space)
        self.n_actions = len(space)
        self.n_features = PerformanceCounters.n_features()
        self.discount = float(discount)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.min_epsilon = float(min_epsilon)
        self.batch_size = int(batch_size)
        self.target_sync_interval = int(target_sync_interval)
        self.train_interval = int(train_interval)
        self.rng = make_rng(seed)
        seed_q = int(self.rng.integers(0, 2**31 - 1))
        seed_t = int(self.rng.integers(0, 2**31 - 1))
        self.q_network = MLPRegressor(
            hidden_sizes=hidden_sizes, learning_rate=learning_rate,
            epochs=1, batch_size=batch_size, seed=seed_q,
        )
        self.target_network = MLPRegressor(
            hidden_sizes=hidden_sizes, learning_rate=learning_rate,
            epochs=1, batch_size=batch_size, seed=seed_t,
        )
        # Initialise both networks on dummy data so predict() is available.
        dummy_x = np.zeros((2, self.n_features))
        dummy_y = np.zeros((2, self.n_actions))
        self.q_network.partial_fit(dummy_x, dummy_y, epochs=1)
        self.target_network.partial_fit(dummy_x, dummy_y, epochs=1)
        self._sync_target()
        self.replay = ReplayBuffer(capacity=replay_capacity)
        self._last_state: Optional[np.ndarray] = None
        self._last_action: Optional[int] = None
        self.n_updates = 0

    def _sync_target(self) -> None:
        assert self.q_network._core is not None and self.target_network._core is not None
        self.target_network._core.copy_parameters_from(self.q_network._core)

    def _q_values(self, state: np.ndarray, network: MLPRegressor) -> np.ndarray:
        return np.asarray(network.predict(state.reshape(1, -1))).reshape(-1)

    def decide(self, counters: Optional[PerformanceCounters]) -> SoCConfiguration:
        if counters is None:
            self._last_state = None
            self._last_action = self.space.index_of(self.current)
            return self.current
        state = counters.feature_vector()
        if self.rng.random() < self.epsilon:
            action = int(self.rng.integers(0, self.n_actions))
        else:
            action = int(np.argmax(self._q_values(state, self.q_network)))
        self._last_state = state
        self._last_action = action
        self.current = self.space[action]
        return self.current

    def observe(self, result: SnippetResult) -> None:
        super().observe(result)
        next_state = result.counters.feature_vector()
        reward = -result.energy_per_instruction_nj
        if self._last_action is not None and self._last_state is not None:
            self.replay.push(Transition(self._last_state, self._last_action,
                                        reward, next_state))
        self._last_state = next_state
        self.n_updates += 1
        self.epsilon = max(self.min_epsilon, self.epsilon * self.epsilon_decay)
        if len(self.replay) >= self.batch_size and self.n_updates % self.train_interval == 0:
            self._train_step()
        if self.n_updates % self.target_sync_interval == 0:
            self._sync_target()

    def _train_step(self) -> None:
        batch = self.replay.sample(self.batch_size, self.rng)
        states = np.vstack([t.state for t in batch])
        next_states = np.vstack([t.next_state for t in batch])
        current_q = np.asarray(self.q_network.predict(states))
        if current_q.ndim == 1:
            current_q = current_q.reshape(len(batch), -1)
        next_q = np.asarray(self.target_network.predict(next_states))
        if next_q.ndim == 1:
            next_q = next_q.reshape(len(batch), -1)
        targets = current_q.copy()
        for row, transition in enumerate(batch):
            targets[row, transition.action] = (
                transition.reward + self.discount * float(np.max(next_q[row]))
            )
        self.q_network.partial_fit(states, targets, epochs=1)
