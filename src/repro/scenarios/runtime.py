"""Executing policies under a scenario trace.

A :class:`~repro.scenarios.base.ScenarioTrace` is more than a snippet list:
throttling scenarios restrict the reachable configuration space for whole
windows of the run.  This module provides the three runtime pieces:

* :func:`restricted_spaces` / :func:`make_space_schedule` — materialise the
  per-cap restricted :class:`~repro.soc.configuration.ConfigurationSpace`
  objects (one per distinct cap, built once) and the step -> active-space
  schedule consumed by
  :func:`~repro.core.framework.run_policy_on_snippets`.
* :func:`build_scenario_oracle` — a scenario-aware Oracle table: every
  snippet's entry is computed against the space that is *actually
  reachable at its step* (via the vectorized batch sweep), so accuracy and
  normalised energy stay meaningful under throttling.  Entries flow
  through the :class:`~repro.core.oracle.OracleCache`, whose keys include
  the space restriction — a throttled window can never reuse a stale
  full-space entry.
* :func:`run_policy_on_scenario` — the one-call evaluation entry point
  mirroring :func:`~repro.core.framework.run_policy_on_snippets`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.framework import PolicyRunResult, run_policy_on_snippets
from repro.core.objectives import ENERGY, Objective
from repro.core.oracle import OracleCache, OracleTable, build_oracle
from repro.scenarios.base import ScenarioTrace
from repro.soc.configuration import ConfigurationSpace
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet


def restricted_spaces(base_space: ConfigurationSpace,
                      trace: ScenarioTrace) -> Dict[int, ConfigurationSpace]:
    """One restricted space per distinct throttle cap in ``trace``."""
    caps = sorted({event.max_opp_index for event in trace.throttle_events})
    return {cap: base_space.restrict(max_opp_index=cap) for cap in caps}


def make_space_schedule(
    base_space: ConfigurationSpace, trace: ScenarioTrace
) -> Optional[Callable[[int], ConfigurationSpace]]:
    """Step -> active-space schedule for ``trace`` (None when unthrottled)."""
    if not trace.throttle_events:
        return None
    spaces = restricted_spaces(base_space, trace)

    def schedule(step: int) -> ConfigurationSpace:
        cap = trace.cap_at(step)
        return base_space if cap is None else spaces[cap]

    return schedule


def build_scenario_oracle(
    simulator: SoCSimulator,
    base_space: ConfigurationSpace,
    trace: ScenarioTrace,
    objective: Objective = ENERGY,
    cache: Optional[OracleCache] = None,
) -> OracleTable:
    """Oracle table for ``trace`` honouring its per-step space restrictions.

    Steps are grouped by their active throttle cap; each group is swept
    with :func:`~repro.core.oracle.build_oracle` (the vectorized batch
    engine path) against the matching restricted space, and the groups are
    merged into one table.  Snippet names are unique within a scenario
    trace, so the merge is collision free.
    """
    spaces = restricted_spaces(base_space, trace)
    by_cap: Dict[Optional[int], List[Snippet]] = {}
    for step, snippet in enumerate(trace.snippets):
        by_cap.setdefault(trace.cap_at(step), []).append(snippet)
    table = OracleTable(objective_name=objective.name)
    for cap, snippets in by_cap.items():
        space = base_space if cap is None else spaces[cap]
        group_table = build_oracle(simulator, space, snippets, objective,
                                   cache=cache)
        table.entries.update(group_table.entries)
    return table


def run_policy_on_scenario(
    simulator: SoCSimulator,
    base_space: ConfigurationSpace,
    policy: DRMPolicy,
    trace: ScenarioTrace,
    oracle_table: Optional[OracleTable] = None,
    rng: Optional[np.random.Generator] = None,
    reset_policy: bool = True,
) -> PolicyRunResult:
    """Run ``policy`` over a scenario trace, enforcing its throttle windows.

    Thin wrapper around
    :func:`~repro.core.framework.run_policy_on_snippets`: the scenario's
    space schedule is installed so that decisions issued during a throttle
    window are clamped into the restricted space before execution.
    """
    return run_policy_on_snippets(
        simulator,
        base_space,
        policy,
        trace.snippets,
        oracle_table=oracle_table,
        rng=rng,
        reset_policy=reset_policy,
        space_schedule=make_space_schedule(base_space, trace),
    )
