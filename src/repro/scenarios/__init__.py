"""Dynamic scenario engine for stress/robustness sweeps.

Scenario transforms perturb generated snippet traces (and, for throttling
scenarios, the reachable configuration space) over time, so policies can
be stressed on dynamics the static suite presets never produce.  See
:mod:`repro.scenarios.base` for the design contract and
:mod:`repro.scenarios.transforms` for the built-in scenarios registered at
import time.
"""

from repro.scenarios.base import (
    ScenarioSpec,
    ScenarioTrace,
    ThrottleEvent,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_from_dict,
)
from repro.scenarios.transforms import (
    BurstyIdle,
    CharacteristicDrift,
    CompositeScenario,
    ConcurrentMix,
    PhaseChurn,
    ThermalThrottle,
)
from repro.scenarios.runtime import (
    build_scenario_oracle,
    make_space_schedule,
    restricted_spaces,
    run_policy_on_scenario,
)

__all__ = [
    "BurstyIdle",
    "CharacteristicDrift",
    "CompositeScenario",
    "ConcurrentMix",
    "PhaseChurn",
    "ScenarioSpec",
    "ScenarioTrace",
    "ThermalThrottle",
    "ThrottleEvent",
    "available_scenarios",
    "build_scenario_oracle",
    "get_scenario",
    "make_space_schedule",
    "register_scenario",
    "restricted_spaces",
    "run_policy_on_scenario",
    "scenario_from_dict",
]
