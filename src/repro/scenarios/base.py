"""Scenario specifications, traces and the scenario registry.

The paper's central claim is that *online* imitation learning adapts to
workloads the offline policy never saw.  The three static suite presets
(Mi-Bench / CortexSuite / PARSEC) exercise only one kind of novelty —
unseen applications.  This subsystem makes *dynamic* novelty first class:
a :class:`ScenarioSpec` is a small, seedable, serializable transform that
perturbs a generated snippet trace (and, for throttling scenarios, the
platform's reachable configuration space) over time.

Design rules every scenario obeys:

* **Pure** — :meth:`ScenarioSpec.apply` never mutates the input snippets;
  it returns a fresh :class:`ScenarioTrace` whose snippets are either the
  unmodified input objects (reorderings) or newly constructed ones
  (insertions / characteristic rewrites).
* **Seedable** — all randomness comes from the generator passed to
  ``apply``; the same seed reproduces the same trace bit for bit, which is
  what makes the golden-trace and ``--jobs`` determinism tests possible.
* **Serializable** — ``to_dict`` / :func:`scenario_from_dict` round-trip a
  spec through plain JSON-compatible data, so sweeps can be described in
  config files and shipped across worker processes.
* **Registered** — default instances live in a name registry mirroring the
  experiment registry, so drivers and the CLI resolve scenarios by name
  (``python -m repro.experiments robustness --scenario phase_churn``).
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.soc.snippet import Snippet
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class ThrottleEvent:
    """One thermal-throttling window over a snippet trace.

    While ``start <= step < stop`` the platform may not run any cluster
    above OPP index ``max_opp_index`` — the reachable configuration space
    shrinks to :meth:`~repro.soc.configuration.ConfigurationSpace.restrict`
    of the base space.
    """

    start: int
    stop: int
    max_opp_index: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.stop <= self.start:
            raise ValueError("stop must be greater than start")
        if self.max_opp_index < 0:
            raise ValueError("max_opp_index must be non-negative")

    def active_at(self, step: int) -> bool:
        return self.start <= step < self.stop


@dataclass
class ScenarioTrace:
    """Output of a scenario transform: a snippet trace plus platform events.

    ``snippets`` is the perturbed trace; ``throttle_events`` the (possibly
    empty) set of windows during which the configuration space is capped.
    Snippet names are guaranteed unique within the trace (enforced by
    :meth:`ScenarioSpec.apply`), so one merged Oracle table can cover the
    whole trace even when different steps use different spaces.
    """

    snippets: List[Snippet] = field(default_factory=list)
    throttle_events: Tuple[ThrottleEvent, ...] = ()
    scenario_name: str = ""

    def __len__(self) -> int:
        return len(self.snippets)

    def cap_at(self, step: int) -> Optional[int]:
        """Tightest OPP cap active at ``step`` (None when unthrottled)."""
        caps = [event.max_opp_index for event in self.throttle_events
                if event.active_at(step)]
        return min(caps) if caps else None

    def throttled_steps(self) -> int:
        """Number of steps with at least one active throttle window."""
        return sum(1 for step in range(len(self.snippets))
                   if self.cap_at(step) is not None)

    def applications(self) -> List[str]:
        """Application names in first-appearance order."""
        seen: List[str] = []
        for snippet in self.snippets:
            if snippet.application not in seen:
                seen.append(snippet.application)
        return seen


#: Serialization registry: ScenarioSpec subclass name -> class.
_SPEC_TYPES: Dict[str, type] = {}


class ScenarioSpec(abc.ABC):
    """One named, seedable, serializable trace perturbation.

    Subclasses are small frozen dataclasses whose fields are the scenario's
    parameters, always including a ``name`` field — the registry key and
    the label stamped onto produced traces.  They implement
    :meth:`_transform`; the public :meth:`apply` wraps it with seed
    handling and output validation.
    """

    #: One-line human description (class attribute on each subclass).
    description: str = ""

    #: Registry key; overridden by the subclasses' ``name`` dataclass field.
    name: str = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        _SPEC_TYPES[cls.__name__] = cls

    # -- required subclass surface ------------------------------------- #
    @abc.abstractmethod
    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        """Produce the perturbed trace (must not mutate ``snippets``)."""

    # -- public API ----------------------------------------------------- #
    def apply(self, snippets: Sequence[Snippet],
              rng: SeedLike = None) -> ScenarioTrace:
        """Apply the scenario to ``snippets`` and return the new trace.

        ``rng`` may be a seed or a generator; the input sequence is never
        mutated.  The output trace is validated: it must be non-empty and
        its snippet names must be unique (Oracle tables key on the name).
        """
        frozen = tuple(snippets)
        if not frozen:
            raise ValueError("scenario input trace must not be empty")
        trace = self._transform(frozen, make_rng(rng))
        trace.scenario_name = self.name
        if not trace.snippets:
            raise ValueError(
                f"scenario {self.name!r} produced an empty trace"
            )
        names = [snippet.name for snippet in trace.snippets]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario {self.name!r} produced duplicate snippet names"
            )
        last = len(trace.snippets)
        for event in trace.throttle_events:
            if event.start >= last:
                raise ValueError(
                    f"scenario {self.name!r} produced a throttle event "
                    f"starting at {event.start} beyond the trace ({last})"
                )
        return trace

    # -- serialization --------------------------------------------------- #
    def params(self) -> Dict[str, Any]:
        """The spec's parameters as a JSON-compatible dict."""
        if not dataclasses.is_dataclass(self):
            raise TypeError("ScenarioSpec subclasses must be dataclasses")
        out: Dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            out[spec_field.name] = _param_to_jsonable(value)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Serializable description: transform type plus parameters."""
        return {"type": type(self).__name__, "params": self.params()}

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "ScenarioSpec":
        """Reconstruct a spec from :meth:`params` output."""
        return cls(**params)  # type: ignore[call-arg]


def _param_to_jsonable(value: Any) -> Any:
    if isinstance(value, ScenarioSpec):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_param_to_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise TypeError(
        f"scenario parameter of type {type(value).__name__} is not serializable"
    )


def scenario_from_dict(payload: Dict[str, Any]) -> ScenarioSpec:
    """Inverse of :meth:`ScenarioSpec.to_dict` (registry-dispatched)."""
    try:
        spec_type = payload["type"]
        params = dict(payload.get("params", {}))
    except (TypeError, KeyError) as exc:
        raise ValueError(f"malformed scenario payload: {payload!r}") from exc
    if spec_type not in _SPEC_TYPES:
        raise KeyError(
            f"unknown scenario type {spec_type!r}; known: {sorted(_SPEC_TYPES)}"
        )
    cls = _SPEC_TYPES[spec_type]
    return cls.from_params(params)


# --------------------------------------------------------------------- #
# Scenario registry (name -> default spec instance)
# --------------------------------------------------------------------- #
_SCENARIO_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec,
                      overwrite: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (resolvable by ``spec.name``)."""
    if spec.name in _SCENARIO_REGISTRY and not overwrite:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _SCENARIO_REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Resolve a registered scenario by name."""
    if name not in _SCENARIO_REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    return _SCENARIO_REGISTRY[name]


def available_scenarios() -> List[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_SCENARIO_REGISTRY)
