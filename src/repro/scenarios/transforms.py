"""Built-in scenario transforms.

Each transform stresses the online-adaptation story along one axis the
static suite presets never exercise:

* :class:`PhaseChurn` — abrupt application/suite distribution shift every
  ``block`` snippets (the trace keeps switching phases mid-run).
* :class:`BurstyIdle` — bursty arrival pattern: bursts of real work
  separated by near-idle gaps (OS-housekeeping-like snippets).
* :class:`ConcurrentMix` — fine-grained round-robin interleaving of the
  applications, as if several apps time-share the board concurrently.
* :class:`ThermalThrottle` — periodic thermal events that cap the highest
  reachable OPP, shrinking the configuration space for whole windows.
* :class:`CharacteristicDrift` — slow parameterised drift of the snippet
  characteristics (memory intensity ramps up, exploitable ILP decays), so
  the distribution moves away from anything seen at design time.
* :class:`CompositeScenario` — ordered composition of other scenarios
  (used by the registered ``stress_combo``).

Default instances of all of these are placed in the scenario registry at
import time; see :func:`repro.scenarios.base.available_scenarios`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.scenarios.base import (
    ScenarioSpec,
    ScenarioTrace,
    ThrottleEvent,
    register_scenario,
    scenario_from_dict,
)
from repro.soc.snippet import Snippet, SnippetCharacteristics


def _clip(value: float, low: float, high: float) -> float:
    return float(min(max(value, low), high))


def _group_by_application(
    snippets: Tuple[Snippet, ...]
) -> Dict[str, "deque[Snippet]"]:
    """Per-application FIFO queues, preserving each app's internal order."""
    groups: Dict[str, deque] = {}
    for snippet in snippets:
        groups.setdefault(snippet.application, deque()).append(snippet)
    return groups


def _round_robin_blocks(snippets: Tuple[Snippet, ...],
                        rng: np.random.Generator,
                        block: int) -> List[Snippet]:
    """Rebuild the trace as rng-ordered application blocks of ``block``.

    Every application keeps its own snippet order; the *global* order is a
    round robin over the applications (visit order shuffled by ``rng``),
    taking ``block`` snippets per visit.  Small blocks model concurrent
    time slicing; large blocks model abrupt phase churn.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    groups = _group_by_application(snippets)
    order = [str(app) for app in rng.permutation(list(groups))]
    out: List[Snippet] = []
    while len(out) < len(snippets):
        progressed = False
        for app in order:
            queue = groups[app]
            for _ in range(min(block, len(queue))):
                out.append(queue.popleft())
                progressed = True
        assert progressed, "round-robin made no progress"
    return out


@dataclass(frozen=True)
class PhaseChurn(ScenarioSpec):
    """Abrupt suite-to-suite distribution shift every ``block`` snippets."""

    description = ("abrupt application/suite switches every `block` "
                   "snippets (phase churn)")

    name: str = "phase_churn"
    block: int = 8

    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        return ScenarioTrace(_round_robin_blocks(snippets, rng, self.block))


@dataclass(frozen=True)
class ConcurrentMix(ScenarioSpec):
    """Fine-grained interleaving of all applications (concurrent execution)."""

    description = ("round-robin time slicing across all applications "
                   "(concurrent-app interleaving)")

    name: str = "concurrent_mix"
    slice_snippets: int = 2

    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        return ScenarioTrace(
            _round_robin_blocks(snippets, rng, self.slice_snippets)
        )


@dataclass(frozen=True)
class BurstyIdle(ScenarioSpec):
    """Bursts of real work separated by near-idle gaps.

    After every ``burst`` input snippets, ``idle_gap`` synthetic "idle"
    snippets are inserted: tiny, memory-light, LITTLE-leaning windows that
    look like OS housekeeping between arrivals.  Their characteristics get
    a small lognormal jitter from the scenario rng so gaps are not all
    identical.
    """

    description = ("bursty arrivals: `burst` real snippets separated by "
                   "`idle_gap` near-idle snippets")

    name: str = "bursty_idle"
    burst: int = 10
    idle_gap: int = 3
    idle_jitter: float = 0.10
    idle_instruction_fraction: float = 0.25

    def _idle_snippet(self, index: int, n_instructions: float,
                      rng: np.random.Generator) -> Snippet:
        def wobble(value: float) -> float:
            if self.idle_jitter == 0.0:
                return value
            return value * float(np.exp(rng.normal(0.0, self.idle_jitter)))

        characteristics = SnippetCharacteristics(
            memory_intensity=max(0.0, wobble(0.3)),
            memory_access_rate=_clip(wobble(0.10), 0.0, 1.0),
            external_request_rate=_clip(wobble(0.30), 0.0, 1.0),
            branch_misprediction_mpki=max(0.0, wobble(1.0)),
            ilp_factor=_clip(wobble(0.6), 0.05, 1.0),
            parallel_fraction=0.0,
            thread_count=1,
            big_fraction=0.1,
        )
        return Snippet(
            application="idle",
            index=index,
            n_instructions=n_instructions,
            characteristics=characteristics,
        )

    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.idle_gap < 0:
            raise ValueError("idle_gap must be non-negative")
        idle_instructions = max(
            1.0,
            self.idle_instruction_fraction
            * float(np.median([s.n_instructions for s in snippets])),
        )
        out: List[Snippet] = []
        idle_index = 0
        for position, snippet in enumerate(snippets, start=1):
            out.append(snippet)
            if position % self.burst == 0 and position < len(snippets):
                for _ in range(self.idle_gap):
                    out.append(self._idle_snippet(idle_index,
                                                  idle_instructions, rng))
                    idle_index += 1
        return ScenarioTrace(out)


@dataclass(frozen=True)
class ThermalThrottle(ScenarioSpec):
    """Periodic thermal events that cap the reachable OPPs.

    Every ``period`` snippets one throttle window of ``duty * period``
    snippets opens (start offset jittered by the scenario rng), during
    which no cluster may run above OPP index ``max_opp_index``.  The
    snippets themselves are untouched — the stress is entirely on the
    *configuration space* the policy can act in.
    """

    description = ("periodic thermal-throttling windows capping the "
                   "reachable OPP indices")

    name: str = "thermal_throttle"
    period: int = 24
    duty: float = 0.5
    max_opp_index: int = 1

    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        if self.period < 2:
            raise ValueError("period must be >= 2")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        n = len(snippets)
        window = max(1, int(round(self.duty * self.period)))
        events: List[ThrottleEvent] = []
        for origin in range(0, n, self.period):
            slack = max(1, self.period - window)
            offset = int(rng.integers(0, slack))
            start = origin + offset
            stop = min(n, start + window)
            if start < n:
                events.append(ThrottleEvent(start=start, stop=stop,
                                            max_opp_index=self.max_opp_index))
        return ScenarioTrace(list(snippets), throttle_events=tuple(events))


@dataclass(frozen=True)
class CharacteristicDrift(ScenarioSpec):
    """Slow drift of the snippet characteristics along the trace.

    Snippet ``i`` of ``n`` gets its memory intensity scaled by
    ``memory_intensity_scale ** (i / (n-1))`` and its ILP factor by
    ``ilp_scale ** (i / (n-1))`` — a geometric ramp from the original
    characteristics to a strongly memory-bound, low-ILP regime the offline
    policy never trained on.  The ramp is deterministic; the scenario rng
    adds a small per-snippet lognormal wobble when ``jitter`` is non-zero.
    """

    description = ("geometric drift of memory intensity and ILP across "
                   "the trace")

    name: str = "characteristic_drift"
    memory_intensity_scale: float = 3.0
    ilp_scale: float = 0.7
    jitter: float = 0.0

    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        if self.memory_intensity_scale <= 0 or self.ilp_scale <= 0:
            raise ValueError("drift scales must be positive")
        n = len(snippets)
        out: List[Snippet] = []
        for i, snippet in enumerate(snippets):
            progress = i / (n - 1) if n > 1 else 1.0
            wobble = 1.0
            if self.jitter > 0.0:
                wobble = float(np.exp(rng.normal(0.0, self.jitter)))
            chars = snippet.characteristics
            drifted = replace(
                chars,
                memory_intensity=max(
                    0.0,
                    chars.memory_intensity
                    * self.memory_intensity_scale ** progress * wobble,
                ),
                ilp_factor=_clip(
                    chars.ilp_factor * self.ilp_scale ** progress, 0.05, 1.0
                ),
            )
            out.append(replace(snippet, characteristics=drifted))
        return ScenarioTrace(out)


@dataclass(frozen=True)
class CompositeScenario(ScenarioSpec):
    """Ordered composition of other scenarios.

    Children are applied left to right; each child sees the previous
    child's output snippets.  Throttle events from every child are
    concatenated, and their step indices refer to positions in the final
    trace — so once any child has produced throttle events, later children
    must leave the snippet sequence untouched (same snippets, same order).
    Violations raise instead of silently throttling the wrong steps; put
    reordering/inserting children *before* throttling children, as the
    registered ``stress_combo`` does.
    """

    description = "ordered composition of other registered scenario transforms"

    name: str = "composite"
    children: Tuple[ScenarioSpec, ...] = ()

    def _transform(self, snippets: Tuple[Snippet, ...],
                   rng: np.random.Generator) -> ScenarioTrace:
        if not self.children:
            raise ValueError("CompositeScenario needs at least one child")
        current = list(snippets)
        events: List[ThrottleEvent] = []
        for child in self.children:
            trace = child.apply(current, rng)
            if events and not (
                len(trace.snippets) == len(current)
                and all(a is b for a, b in zip(trace.snippets, current))
            ):
                raise ValueError(
                    f"composite {self.name!r}: child {child.name!r} changed "
                    "the snippet sequence after an earlier child produced "
                    "throttle events; move trace-changing children before "
                    "throttling children"
                )
            current = trace.snippets
            events.extend(trace.throttle_events)
        return ScenarioTrace(current, throttle_events=tuple(events))

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "CompositeScenario":
        params = dict(params)
        children = tuple(
            scenario_from_dict(payload)  # type: ignore[arg-type]
            for payload in params.pop("children", ())
        )
        return cls(children=children, **params)  # type: ignore[arg-type]


def _register_default_scenarios() -> None:
    register_scenario(PhaseChurn())
    register_scenario(BurstyIdle())
    register_scenario(ConcurrentMix())
    register_scenario(ThermalThrottle())
    register_scenario(CharacteristicDrift())
    register_scenario(
        CompositeScenario(
            name="stress_combo",
            children=(
                PhaseChurn(),
                CharacteristicDrift(),
                ThermalThrottle(),
            ),
        )
    )


_register_default_scenarios()
