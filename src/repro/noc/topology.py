"""Mesh NoC topology with dimension-ordered (XY) routing."""

from __future__ import annotations

from typing import Dict, List, Tuple

Coordinate = Tuple[int, int]
Link = Tuple[int, int]


class MeshTopology:
    """A 2-D mesh of routers with one core attached to each router.

    Nodes are numbered row-major: node ``id = y * width + x``.  Links are
    directed ``(src_node, dst_node)`` pairs between adjacent routers; XY
    routing first moves along the x dimension, then along y, which is
    deadlock-free on a mesh and is what the analytical model assumes.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.width = int(width)
        self.height = int(height)

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> Coordinate:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x}, {y}) out of range")
        return y * self.width + x

    def links(self) -> List[Link]:
        """All directed router-to-router links."""
        result: List[Link] = []
        for y in range(self.height):
            for x in range(self.width):
                node = self.node_at(x, y)
                if x + 1 < self.width:
                    east = self.node_at(x + 1, y)
                    result.append((node, east))
                    result.append((east, node))
                if y + 1 < self.height:
                    north = self.node_at(x, y + 1)
                    result.append((node, north))
                    result.append((north, node))
        return result

    def xy_route(self, source: int, destination: int) -> List[int]:
        """Router sequence (inclusive) from ``source`` to ``destination``."""
        sx, sy = self.coordinates(source)
        dx, dy = self.coordinates(destination)
        path = [source]
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            path.append(self.node_at(x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append(self.node_at(x, y))
        return path

    def route_links(self, source: int, destination: int) -> List[Link]:
        """Directed links traversed by the XY route."""
        path = self.xy_route(source, destination)
        return list(zip(path[:-1], path[1:]))

    def hop_count(self, source: int, destination: int) -> int:
        sx, sy = self.coordinates(source)
        dx, dy = self.coordinates(destination)
        return abs(sx - dx) + abs(sy - dy)

    def average_hop_count(self) -> float:
        """Mean hop count over all distinct source/destination pairs."""
        total = 0
        pairs = 0
        for src in range(self.n_nodes):
            for dst in range(self.n_nodes):
                if src == dst:
                    continue
                total += self.hop_count(src, dst)
                pairs += 1
        return total / pairs if pairs else 0.0

    def link_usage(self, traffic_matrix: Dict[Tuple[int, int], float]) -> Dict[Link, float]:
        """Aggregate per-link load from a (src, dst) -> rate traffic matrix."""
        usage: Dict[Link, float] = {link: 0.0 for link in self.links()}
        for (src, dst), rate in traffic_matrix.items():
            if src == dst or rate <= 0:
                continue
            for link in self.route_links(src, dst):
                usage[link] += rate
        return usage
