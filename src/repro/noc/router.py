"""Router parameters for the packet-switched NoC simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RouterConfig:
    """Timing parameters of each router / link stage.

    Parameters
    ----------
    router_delay_cycles:
        Pipeline latency added per router traversal (route computation,
        arbitration, crossbar).
    link_delay_cycles:
        Wire latency per hop.
    flits_per_cycle:
        Link bandwidth; 1 means one flit transferred per cycle, so a packet of
        ``n`` flits occupies the link for ``n`` cycles (packet-level
        store-and-forward service model).
    """

    router_delay_cycles: int = 2
    link_delay_cycles: int = 1
    flits_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.router_delay_cycles < 0:
            raise ValueError("router_delay_cycles must be non-negative")
        if self.link_delay_cycles < 0:
            raise ValueError("link_delay_cycles must be non-negative")
        if self.flits_per_cycle < 1:
            raise ValueError("flits_per_cycle must be >= 1")

    def service_cycles(self, size_flits: int) -> int:
        """Cycles a packet of ``size_flits`` occupies one link."""
        if size_flits < 1:
            raise ValueError("size_flits must be >= 1")
        transfer = -(-size_flits // self.flits_per_cycle)  # ceil division
        return transfer

    def per_hop_latency(self, size_flits: int) -> int:
        """Unloaded latency contribution of one hop."""
        return (self.router_delay_cycles + self.link_delay_cycles
                + self.service_cycles(size_flits))
