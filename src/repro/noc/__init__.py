"""Network-on-chip performance-modelling substrate (Sec. III-C).

Contains a cycle-level packet-switched NoC simulator (mesh topology, XY
routing, per-link output queues), synthetic traffic generators, a
queuing-theory analytical latency model, and an SVR-based learned latency
model that combines analytical waiting-time features with simulator
observations — the three modelling approaches the paper contrasts.
"""

from repro.noc.topology import MeshTopology
from repro.noc.packet import Packet
from repro.noc.router import RouterConfig
from repro.noc.traffic import (
    TrafficPattern,
    UniformRandomTraffic,
    TransposeTraffic,
    HotspotTraffic,
)
from repro.noc.simulator import NoCSimulator, NoCSimulationResult
from repro.noc.analytical import AnalyticalNoCModel, AnalyticalEstimate
from repro.noc.svr_model import SVRNoCLatencyModel, build_noc_training_set

__all__ = [
    "MeshTopology",
    "Packet",
    "RouterConfig",
    "TrafficPattern",
    "UniformRandomTraffic",
    "TransposeTraffic",
    "HotspotTraffic",
    "NoCSimulator",
    "NoCSimulationResult",
    "AnalyticalNoCModel",
    "AnalyticalEstimate",
    "SVRNoCLatencyModel",
    "build_noc_training_set",
]
