"""NoC packets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Packet:
    """One network packet travelling from ``source`` to ``destination``.

    Timing fields are filled in by the simulator: ``injection_cycle`` is when
    the packet entered the source queue, ``ejection_cycle`` when its last flit
    left the destination router.
    """

    packet_id: int
    source: int
    destination: int
    size_flits: int
    injection_cycle: int
    ejection_cycle: Optional[int] = None
    hops: int = 0
    route: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("size_flits must be >= 1")
        if self.injection_cycle < 0:
            raise ValueError("injection_cycle must be non-negative")

    @property
    def latency_cycles(self) -> Optional[int]:
        """End-to-end latency, or None if the packet is still in flight."""
        if self.ejection_cycle is None:
            return None
        return self.ejection_cycle - self.injection_cycle

    @property
    def delivered(self) -> bool:
        return self.ejection_cycle is not None
