"""Cycle-level packet-switched NoC simulator.

The simulator models each directed link as a FIFO server: a packet occupies
the link for ``service_cycles`` (its size in flits divided by the link
bandwidth), and traverses routers with a fixed pipeline delay.  Packets
follow XY routes hop by hop, queueing when a link is busy.  This
store-and-forward packet-level abstraction captures the queueing behaviour
the analytical and SVR models try to predict while staying fast enough for
parameter sweeps inside unit tests and benchmarks.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.noc.packet import Packet
from repro.noc.router import RouterConfig
from repro.noc.topology import Link, MeshTopology
from repro.noc.traffic import TrafficPattern


@dataclass
class NoCSimulationResult:
    """Latency and throughput statistics of one simulation run."""

    delivered_packets: List[Packet] = field(default_factory=list)
    undelivered_count: int = 0
    simulated_cycles: int = 0

    @property
    def n_delivered(self) -> int:
        return len(self.delivered_packets)

    def latencies(self) -> np.ndarray:
        return np.array([p.latency_cycles for p in self.delivered_packets], dtype=float)

    @property
    def average_latency_cycles(self) -> float:
        lats = self.latencies()
        return float(np.mean(lats)) if lats.size else float("nan")

    @property
    def p95_latency_cycles(self) -> float:
        lats = self.latencies()
        return float(np.percentile(lats, 95)) if lats.size else float("nan")

    @property
    def throughput_packets_per_cycle(self) -> float:
        if self.simulated_cycles <= 0:
            return 0.0
        return self.n_delivered / self.simulated_cycles

    def average_hops(self) -> float:
        if not self.delivered_packets:
            return float("nan")
        return float(np.mean([p.hops for p in self.delivered_packets]))


class NoCSimulator:
    """Event-driven simulator over the per-link FIFO abstraction."""

    #: :class:`~repro.core.engine.SimulationEngine` identifier.
    engine_name = "noc"

    def __init__(self, topology: MeshTopology,
                 router: Optional[RouterConfig] = None) -> None:
        self.topology = topology
        self.router = router or RouterConfig()

    def evaluate_batch(self, traffic: TrafficPattern,
                       configurations: Sequence[RouterConfig],
                       n_cycles: int = 300) -> List[NoCSimulationResult]:
        """Simulate one traffic pattern under many router configurations.

        :class:`~repro.core.engine.SimulationEngine` batch entry point.  The
        packet trace is generated once and replayed (deep-copied, since the
        simulator mutates packet timing fields) against each router
        configuration, so every result sees identical offered traffic.
        """
        packets = traffic.generate(n_cycles)
        results: List[NoCSimulationResult] = []
        for router in configurations:
            replica = NoCSimulator(self.topology, router)
            results.append(
                replica.run_packets(copy.deepcopy(packets), n_cycles)
            )
        return results

    def run(self, traffic: TrafficPattern, n_cycles: int,
            drain: bool = True, max_drain_cycles: int = 100000) -> NoCSimulationResult:
        """Inject traffic for ``n_cycles`` cycles and simulate until drained."""
        packets = traffic.generate(n_cycles)
        return self.run_packets(packets, n_cycles, drain=drain,
                                max_drain_cycles=max_drain_cycles)

    def run_packets(self, packets: List[Packet], n_cycles: int,
                    drain: bool = True,
                    max_drain_cycles: int = 100000) -> NoCSimulationResult:
        """Simulate an explicit packet list (events sorted by injection time)."""
        # Each link becomes free at link_free[link]; packets advance hop by hop.
        link_free: Dict[Link, int] = {}
        # Event queue of (time, sequence, packet, hop_index, route).
        events: List[Tuple[int, int, int]] = []
        routes: Dict[int, List[int]] = {}
        packet_by_id: Dict[int, Packet] = {}
        sequence = 0
        for packet in sorted(packets, key=lambda p: p.injection_cycle):
            route = self.topology.xy_route(packet.source, packet.destination)
            routes[packet.packet_id] = route
            packet.route = route
            packet.hops = len(route) - 1
            packet_by_id[packet.packet_id] = packet
            heapq.heappush(events, (packet.injection_cycle, sequence, packet.packet_id))
            sequence += 1

        hop_progress: Dict[int, int] = {pid: 0 for pid in routes}
        delivered: List[Packet] = []
        horizon = n_cycles + max_drain_cycles if drain else n_cycles
        last_cycle = 0
        while events:
            time, _, packet_id = heapq.heappop(events)
            if time > horizon:
                break
            last_cycle = max(last_cycle, time)
            packet = packet_by_id[packet_id]
            route = routes[packet_id]
            hop = hop_progress[packet_id]
            if hop >= len(route) - 1:
                # Final router reached: packet ejects into the local core.
                packet.ejection_cycle = time
                delivered.append(packet)
                continue
            link = (route[hop], route[hop + 1])
            service = self.router.service_cycles(packet.size_flits)
            start = max(time, link_free.get(link, 0))
            finish = start + service
            link_free[link] = finish
            arrival_next = (finish + self.router.link_delay_cycles
                            + self.router.router_delay_cycles)
            hop_progress[packet_id] = hop + 1
            heapq.heappush(events, (arrival_next, sequence, packet_id))
            sequence += 1

        undelivered = len(packets) - len(delivered)
        return NoCSimulationResult(
            delivered_packets=delivered,
            undelivered_count=undelivered,
            simulated_cycles=max(n_cycles, last_cycle),
        )

    def zero_load_latency(self, source: int, destination: int,
                          size_flits: int = 4) -> int:
        """Latency of a packet on an empty network (no queueing)."""
        hops = self.topology.hop_count(source, destination)
        per_hop = self.router.per_hop_latency(size_flits)
        return hops * per_hop
