"""Cycle-level packet-switched NoC simulator.

The simulator models each directed link as a FIFO server: a packet occupies
the link for ``service_cycles`` (its size in flits divided by the link
bandwidth), and traverses routers with a fixed pipeline delay.  Packets
follow XY routes hop by hop, queueing when a link is busy.  This
store-and-forward packet-level abstraction captures the queueing behaviour
the analytical and SVR models try to predict while staying fast enough for
parameter sweeps inside unit tests and benchmarks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.noc.packet import Packet
from repro.noc.router import RouterConfig
from repro.noc.topology import Link, MeshTopology
from repro.noc.traffic import TrafficPattern


@dataclass
class _PreparedTraffic:
    """One packet trace preprocessed for replay under many router configs.

    Routes depend only on the topology, so they are computed once per trace
    — as per-packet link-id arrays over a dense link numbering — and shared
    read-only by every configuration of a batch sweep, instead of
    re-routing (and deep-copying) the whole packet list per configuration.
    ``packets`` is sorted by injection cycle (stable), matching the event
    ordering of :meth:`NoCSimulator.run_packets`.
    """

    packets: List[Packet]
    routes: List[List[int]]
    link_ids: List[np.ndarray]
    sizes: np.ndarray
    injections: np.ndarray
    n_links: int


@dataclass
class NoCSimulationResult:
    """Latency and throughput statistics of one simulation run."""

    delivered_packets: List[Packet] = field(default_factory=list)
    undelivered_count: int = 0
    simulated_cycles: int = 0

    @property
    def n_delivered(self) -> int:
        return len(self.delivered_packets)

    def latencies(self) -> np.ndarray:
        return np.array([p.latency_cycles for p in self.delivered_packets], dtype=float)

    @property
    def average_latency_cycles(self) -> float:
        lats = self.latencies()
        return float(np.mean(lats)) if lats.size else float("nan")

    @property
    def p95_latency_cycles(self) -> float:
        lats = self.latencies()
        return float(np.percentile(lats, 95)) if lats.size else float("nan")

    @property
    def throughput_packets_per_cycle(self) -> float:
        if self.simulated_cycles <= 0:
            return 0.0
        return self.n_delivered / self.simulated_cycles

    def average_hops(self) -> float:
        if not self.delivered_packets:
            return float("nan")
        return float(np.mean([p.hops for p in self.delivered_packets]))


class NoCSimulator:
    """Event-driven simulator over the per-link FIFO abstraction."""

    #: :class:`~repro.core.engine.SimulationEngine` identifier.
    engine_name = "noc"

    def __init__(self, topology: MeshTopology,
                 router: Optional[RouterConfig] = None) -> None:
        self.topology = topology
        self.router = router or RouterConfig()

    def evaluate_batch(self, traffic: TrafficPattern,
                       configurations: Sequence[RouterConfig],
                       n_cycles: int = 300) -> List[NoCSimulationResult]:
        """Simulate one traffic pattern under many router configurations.

        :class:`~repro.core.engine.SimulationEngine` batch entry point.  The
        packet trace is generated and prepared (sorted, XY-routed, link ids
        and sizes packed into arrays) exactly once, then replayed read-only
        against each router configuration: every result sees identical
        offered traffic, and the per-configuration cost is just the event
        loop — no per-configuration re-routing or packet deep copies.
        """
        routers = list(configurations)
        if not routers:
            raise ValueError("evaluate_batch needs at least one configuration")
        packets = traffic.generate(n_cycles)
        prepared = self._prepare_packets(packets)
        return [
            self._run_prepared(prepared, router, n_cycles)
            for router in routers
        ]

    def run(self, traffic: TrafficPattern, n_cycles: int,
            drain: bool = True, max_drain_cycles: int = 100000) -> NoCSimulationResult:
        """Inject traffic for ``n_cycles`` cycles and simulate until drained."""
        packets = traffic.generate(n_cycles)
        return self.run_packets(packets, n_cycles, drain=drain,
                                max_drain_cycles=max_drain_cycles)

    def run_packets(self, packets: List[Packet], n_cycles: int,
                    drain: bool = True,
                    max_drain_cycles: int = 100000) -> NoCSimulationResult:
        """Simulate an explicit packet list (events sorted by injection time).

        The input packets are mutated in place (``route``, ``hops`` and — for
        delivered packets — ``ejection_cycle``) and the delivered list holds
        the same objects, as it always did.
        """
        prepared = self._prepare_packets(packets)
        return self._run_prepared(prepared, self.router, n_cycles, drain=drain,
                                  max_drain_cycles=max_drain_cycles,
                                  reuse_packets=True)

    def _prepare_packets(self, packets: List[Packet]) -> _PreparedTraffic:
        """Sort, route and array-pack a packet list for (repeated) replay.

        Routing annotations (``route``/``hops``) are written back onto the
        input packets, mirroring the historical :meth:`run_packets` side
        effect.
        """
        ordered = sorted(packets, key=lambda p: p.injection_cycle)
        link_index: Dict[Link, int] = {}
        routes: List[List[int]] = []
        link_ids: List[np.ndarray] = []
        for packet in ordered:
            route = self.topology.xy_route(packet.source, packet.destination)
            packet.route = route
            packet.hops = len(route) - 1
            ids = np.empty(len(route) - 1, dtype=np.int64)
            for hop in range(len(route) - 1):
                link = (route[hop], route[hop + 1])
                ids[hop] = link_index.setdefault(link, len(link_index))
            routes.append(route)
            link_ids.append(ids)
        return _PreparedTraffic(
            packets=ordered,
            routes=routes,
            link_ids=link_ids,
            sizes=np.array([p.size_flits for p in ordered], dtype=np.int64),
            injections=np.array([p.injection_cycle for p in ordered],
                                dtype=np.int64),
            n_links=len(link_index),
        )

    def _run_prepared(self, prepared: _PreparedTraffic, router: RouterConfig,
                      n_cycles: int, drain: bool = True,
                      max_drain_cycles: int = 100000,
                      reuse_packets: bool = False) -> NoCSimulationResult:
        """Event loop over a prepared trace under one router configuration.

        With ``reuse_packets=True`` the delivered list holds the (mutated)
        prepared packets themselves; otherwise fresh :class:`Packet` result
        objects are built so the shared prepared trace stays pristine for
        the next configuration.
        """
        n_packets = len(prepared.packets)
        # Service time is constant per packet under one configuration; go
        # through the router's own service model (one call per distinct
        # packet size) so the batch path can never drift from run_packets.
        unique_sizes, inverse = np.unique(prepared.sizes, return_inverse=True)
        service = np.array(
            [router.service_cycles(int(size)) for size in unique_sizes],
            dtype=np.int64,
        )[inverse] if n_packets else np.empty(0, dtype=np.int64)
        per_hop_delay = router.link_delay_cycles + router.router_delay_cycles
        link_free = np.zeros(prepared.n_links, dtype=np.int64)
        hop_progress = np.zeros(n_packets, dtype=np.int64)
        ejection = np.zeros(n_packets, dtype=np.int64)
        # Events are (time, sequence, packet index); the prepared packets are
        # injection-sorted, so the initial list is already a valid heap and
        # the sequence numbers replicate the historical tie-breaking.
        events: List[Tuple[int, int, int]] = [
            (int(prepared.injections[k]), k, k) for k in range(n_packets)
        ]
        sequence = n_packets
        delivered_indices: List[int] = []
        horizon = n_cycles + max_drain_cycles if drain else n_cycles
        last_cycle = 0
        while events:
            time, _, index = heapq.heappop(events)
            if time > horizon:
                break
            last_cycle = max(last_cycle, time)
            links = prepared.link_ids[index]
            hop = hop_progress[index]
            if hop >= links.shape[0]:
                # Final router reached: packet ejects into the local core.
                ejection[index] = time
                delivered_indices.append(index)
                continue
            link = links[hop]
            start = max(time, int(link_free[link]))
            finish = start + int(service[index])
            link_free[link] = finish
            hop_progress[index] = hop + 1
            heapq.heappush(events, (finish + per_hop_delay, sequence, index))
            sequence += 1

        delivered: List[Packet] = []
        for index in delivered_indices:
            source = prepared.packets[index]
            if reuse_packets:
                source.ejection_cycle = int(ejection[index])
                delivered.append(source)
            else:
                delivered.append(
                    Packet(
                        packet_id=source.packet_id,
                        source=source.source,
                        destination=source.destination,
                        size_flits=source.size_flits,
                        injection_cycle=source.injection_cycle,
                        ejection_cycle=int(ejection[index]),
                        hops=len(prepared.routes[index]) - 1,
                        route=list(prepared.routes[index]),
                    )
                )
        return NoCSimulationResult(
            delivered_packets=delivered,
            undelivered_count=n_packets - len(delivered),
            simulated_cycles=max(n_cycles, last_cycle),
        )

    def zero_load_latency(self, source: int, destination: int,
                          size_flits: int = 4) -> int:
        """Latency of a packet on an empty network (no queueing)."""
        hops = self.topology.hop_count(source, destination)
        per_hop = self.router.per_hop_latency(size_flits)
        return hops * per_hop
