"""Queuing-theory analytical NoC latency model (Sec. III-C).

"State-of-the-art techniques view the NoC as a network of queues and
construct performance models using queuing theory."  Each directed link is
modelled as an M/M/1 server whose utilisation is the aggregate packet rate
routed over it times the packet service time; the end-to-end latency of a
flow is the sum over its route of the per-hop pipeline latency plus the
queueing delay of each traversed link, averaged over all flows weighted by
their rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.noc.router import RouterConfig
from repro.noc.topology import Link, MeshTopology


@dataclass
class AnalyticalEstimate:
    """Output of the analytical model for one traffic configuration."""

    average_latency_cycles: float
    average_waiting_cycles: float
    average_source_queue_cycles: float
    max_link_utilization: float
    saturated: bool


class AnalyticalNoCModel:
    """M/M/1-approximation latency model over XY routes."""

    def __init__(self, topology: MeshTopology,
                 router: RouterConfig = RouterConfig()) -> None:
        self.topology = topology
        self.router = router

    def link_utilizations(self, rate_matrix: Dict[Tuple[int, int], float],
                          size_flits: int) -> Dict[Link, float]:
        """Per-link utilisation (fraction of cycles the link is busy)."""
        service = self.router.service_cycles(size_flits)
        usage = self.topology.link_usage(rate_matrix)
        return {link: rate * service for link, rate in usage.items()}

    @staticmethod
    def _mm1_waiting(utilization: float, service: float) -> float:
        """Mean waiting time of an M/M/1 queue with the given utilisation."""
        if utilization >= 1.0:
            return float("inf")
        return utilization * service / (1.0 - utilization)

    def estimate(self, rate_matrix: Dict[Tuple[int, int], float],
                 size_flits: int = 4) -> AnalyticalEstimate:
        """Average end-to-end latency over all flows in ``rate_matrix``."""
        service = float(self.router.service_cycles(size_flits))
        utilizations = self.link_utilizations(rate_matrix, size_flits)
        max_utilization = max(utilizations.values()) if utilizations else 0.0
        saturated = max_utilization >= 1.0

        # Source (injection) queue utilisation per node: total injected rate.
        source_rates: Dict[int, float] = {}
        for (source, _), rate in rate_matrix.items():
            source_rates[source] = source_rates.get(source, 0.0) + rate

        total_rate = 0.0
        weighted_latency = 0.0
        weighted_waiting = 0.0
        weighted_source_wait = 0.0
        for (source, destination), rate in rate_matrix.items():
            if rate <= 0:
                continue
            links = self.topology.route_links(source, destination)
            hops = len(links)
            base = hops * self.router.per_hop_latency(size_flits)
            waiting = sum(
                self._mm1_waiting(utilizations.get(link, 0.0), service)
                for link in links
            )
            source_utilization = source_rates.get(source, 0.0) * service
            source_wait = self._mm1_waiting(min(source_utilization, 0.999999), service)
            latency = base + waiting + source_wait
            total_rate += rate
            weighted_latency += rate * latency
            weighted_waiting += rate * waiting
            weighted_source_wait += rate * source_wait

        if total_rate <= 0:
            return AnalyticalEstimate(float("nan"), float("nan"), float("nan"),
                                      max_utilization, saturated)
        return AnalyticalEstimate(
            average_latency_cycles=weighted_latency / total_rate,
            average_waiting_cycles=weighted_waiting / total_rate,
            average_source_queue_cycles=weighted_source_wait / total_rate,
            max_link_utilization=max_utilization,
            saturated=saturated,
        )
