"""SVR-based NoC latency model (Sec. III-C, ref. [34]).

Following the cited approach, "the channel and source waiting times for the
NoC are estimated through analytical models.  Then, the waiting time obtained
from the analytical models and the waiting time obtained from an NoC
simulator are used as features to learn support vector regression
(SVR)-based model to estimate NoC performance."  The feature vector here
combines the injection rate, average hop count and the analytical model's
channel/source waiting estimates; the target is the latency measured by the
cycle-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.metrics import mean_absolute_percentage_error
from repro.ml.scaling import StandardScaler
from repro.ml.svr import SupportVectorRegressor
from repro.noc.analytical import AnalyticalNoCModel
from repro.noc.router import RouterConfig
from repro.noc.simulator import NoCSimulator
from repro.noc.topology import MeshTopology
from repro.noc.traffic import UniformRandomTraffic
from repro.utils.rng import SeedLike, derive_seed


@dataclass
class NoCSample:
    """One (traffic configuration, measured latency) training sample."""

    injection_rate: float
    packet_size_flits: int
    analytical_latency: float
    analytical_waiting: float
    analytical_source_wait: float
    average_hops: float
    simulated_latency: float

    def features(self) -> np.ndarray:
        return np.array(
            [
                self.injection_rate,
                float(self.packet_size_flits),
                self.analytical_latency,
                self.analytical_waiting,
                self.analytical_source_wait,
                self.average_hops,
            ],
            dtype=float,
        )


def build_noc_training_set(
    topology: MeshTopology,
    injection_rates: Sequence[float],
    packet_sizes: Sequence[int] = (4,),
    n_cycles: int = 400,
    router: Optional[RouterConfig] = None,
    seed: SeedLike = 0,
) -> List[NoCSample]:
    """Sweep injection rates / packet sizes and collect training samples."""
    router_config = router or RouterConfig()
    simulator = NoCSimulator(topology, router_config)
    analytical = AnalyticalNoCModel(topology, router_config)
    samples: List[NoCSample] = []
    for size in packet_sizes:
        for rate in injection_rates:
            traffic = UniformRandomTraffic(
                topology, injection_rate=rate, packet_size_flits=size,
                seed=derive_seed(seed, [size, int(rate * 10000)]),
            )
            estimate = analytical.estimate(traffic.rate_matrix(), size_flits=size)
            result = simulator.run(traffic, n_cycles=n_cycles)
            if result.n_delivered == 0:
                continue
            samples.append(
                NoCSample(
                    injection_rate=float(rate),
                    packet_size_flits=int(size),
                    analytical_latency=estimate.average_latency_cycles,
                    analytical_waiting=estimate.average_waiting_cycles,
                    analytical_source_wait=estimate.average_source_queue_cycles,
                    average_hops=result.average_hops(),
                    simulated_latency=result.average_latency_cycles,
                )
            )
    return samples


class SVRNoCLatencyModel:
    """SVR latency predictor over analytical + structural features."""

    def __init__(self, c: float = 50.0, epsilon: float = 0.05,
                 gamma: Optional[float] = None) -> None:
        self.scaler = StandardScaler()
        self.svr = SupportVectorRegressor(c=c, epsilon=epsilon, kernel="rbf",
                                          gamma=gamma, max_iterations=4000)
        self._trained = False

    def fit(self, samples: Sequence[NoCSample]) -> "SVRNoCLatencyModel":
        if len(samples) < 3:
            raise ValueError("need at least 3 samples to train the SVR model")
        features = np.vstack([s.features() for s in samples])
        # Replace saturated (infinite) analytical estimates with a large cap so
        # the SVR can still learn from near-saturation samples.
        features = np.nan_to_num(features, posinf=1e4, neginf=0.0)
        targets = np.array([s.simulated_latency for s in samples])
        scaled = self.scaler.fit_transform(features)
        self.svr.fit(scaled, targets)
        self._trained = True
        return self

    def predict(self, samples: Sequence[NoCSample]) -> np.ndarray:
        if not self._trained:
            raise RuntimeError("SVRNoCLatencyModel has not been fitted yet")
        features = np.vstack([s.features() for s in samples])
        features = np.nan_to_num(features, posinf=1e4, neginf=0.0)
        scaled = self.scaler.transform(features)
        return self.svr.predict(scaled)

    def evaluate(self, samples: Sequence[NoCSample]) -> Tuple[float, np.ndarray]:
        """Return (MAPE %, predictions) against the simulated latencies."""
        predictions = self.predict(samples)
        targets = np.array([s.simulated_latency for s in samples])
        return mean_absolute_percentage_error(targets, predictions), predictions
