"""Synthetic NoC traffic generators.

Each pattern produces a stream of packets with Bernoulli-per-cycle injection
at every source node (the standard NoC evaluation methodology), plus the
(src, dst) rate matrix the analytical model needs.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

import numpy as np

from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology
from repro.utils.rng import SeedLike, make_rng


class TrafficPattern(abc.ABC):
    """Base class for synthetic traffic patterns."""

    def __init__(self, topology: MeshTopology, injection_rate: float,
                 packet_size_flits: int = 4, seed: SeedLike = None) -> None:
        if not 0.0 < injection_rate <= 1.0:
            raise ValueError("injection_rate must be in (0, 1] packets/node/cycle")
        if packet_size_flits < 1:
            raise ValueError("packet_size_flits must be >= 1")
        self.topology = topology
        self.injection_rate = float(injection_rate)
        self.packet_size_flits = int(packet_size_flits)
        self.rng = make_rng(seed)

    @abc.abstractmethod
    def destination_for(self, source: int) -> int:
        """Pick a destination for a packet injected at ``source``."""

    def generate(self, n_cycles: int) -> List[Packet]:
        """Generate all packets injected during ``n_cycles`` cycles."""
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        packets: List[Packet] = []
        packet_id = 0
        for cycle in range(n_cycles):
            for source in range(self.topology.n_nodes):
                if self.rng.random() < self.injection_rate:
                    destination = self.destination_for(source)
                    if destination == source:
                        continue
                    packets.append(
                        Packet(
                            packet_id=packet_id,
                            source=source,
                            destination=destination,
                            size_flits=self.packet_size_flits,
                            injection_cycle=cycle,
                        )
                    )
                    packet_id += 1
        return packets

    def rate_matrix(self) -> Dict[Tuple[int, int], float]:
        """Expected per-pair packet rates (packets/cycle), for the analytical model."""
        matrix: Dict[Tuple[int, int], float] = {}
        n = self.topology.n_nodes
        for source in range(n):
            probabilities = self.destination_probabilities(source)
            for destination, probability in probabilities.items():
                if destination == source or probability <= 0:
                    continue
                matrix[(source, destination)] = self.injection_rate * probability
        return matrix

    @abc.abstractmethod
    def destination_probabilities(self, source: int) -> Dict[int, float]:
        """Probability of each destination given a packet injected at ``source``."""


class UniformRandomTraffic(TrafficPattern):
    """Each packet targets a uniformly random other node."""

    def destination_for(self, source: int) -> int:
        n = self.topology.n_nodes
        destination = int(self.rng.integers(0, n - 1))
        if destination >= source:
            destination += 1
        return destination

    def destination_probabilities(self, source: int) -> Dict[int, float]:
        n = self.topology.n_nodes
        probability = 1.0 / (n - 1)
        return {d: probability for d in range(n) if d != source}


class TransposeTraffic(TrafficPattern):
    """Node (x, y) always sends to node (y, x) (requires a square mesh)."""

    def __init__(self, topology: MeshTopology, injection_rate: float,
                 packet_size_flits: int = 4, seed: SeedLike = None) -> None:
        if topology.width != topology.height:
            raise ValueError("transpose traffic requires a square mesh")
        super().__init__(topology, injection_rate, packet_size_flits, seed)

    def _transpose(self, source: int) -> int:
        x, y = self.topology.coordinates(source)
        return self.topology.node_at(y, x)

    def destination_for(self, source: int) -> int:
        return self._transpose(source)

    def destination_probabilities(self, source: int) -> Dict[int, float]:
        return {self._transpose(source): 1.0}


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with extra probability mass on a hotspot node."""

    def __init__(self, topology: MeshTopology, injection_rate: float,
                 hotspot_node: int = 0, hotspot_fraction: float = 0.3,
                 packet_size_flits: int = 4, seed: SeedLike = None) -> None:
        super().__init__(topology, injection_rate, packet_size_flits, seed)
        if not 0 <= hotspot_node < topology.n_nodes:
            raise ValueError("hotspot_node out of range")
        if not 0.0 <= hotspot_fraction < 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1)")
        self.hotspot_node = int(hotspot_node)
        self.hotspot_fraction = float(hotspot_fraction)

    def destination_for(self, source: int) -> int:
        if source != self.hotspot_node and self.rng.random() < self.hotspot_fraction:
            return self.hotspot_node
        n = self.topology.n_nodes
        destination = int(self.rng.integers(0, n - 1))
        if destination >= source:
            destination += 1
        return destination

    def destination_probabilities(self, source: int) -> Dict[int, float]:
        n = self.topology.n_nodes
        uniform = 1.0 / (n - 1)
        probabilities = {d: uniform for d in range(n) if d != source}
        if source == self.hotspot_node:
            return probabilities
        scaled = {d: p * (1.0 - self.hotspot_fraction) for d, p in probabilities.items()}
        scaled[self.hotspot_node] = (
            scaled.get(self.hotspot_node, 0.0) + self.hotspot_fraction
        )
        return scaled
