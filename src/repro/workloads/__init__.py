"""Benchmark workload generators.

The paper's IL experiments use applications from the Mi-Bench, CortexSuite and
PARSEC benchmark suites segmented into fixed-instruction snippets, and the
ENMPC experiments use ten mobile graphics benchmarks.  Since the actual
binaries cannot be executed here, each benchmark is replaced by a synthetic
snippet-trace generator whose micro-architectural characteristics (memory
intensity, ILP, branch behaviour, thread counts) are parameterised per
application and per suite, preserving the cross-suite distribution shift that
drives the paper's generalisation results (Table II).
"""

from repro.workloads.spec import WorkloadSpec, WorkloadPhase
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import (
    MIBENCH_APPS,
    CORTEX_APPS,
    PARSEC_APPS,
    ALL_CPU_APPS,
    get_workload,
    workloads_by_suite,
    table2_workloads,
    figure4_workloads,
)
from repro.workloads.graphics import GRAPHICS_APPS, get_graphics_workload
from repro.workloads.sequences import ApplicationSequence, build_online_sequence

__all__ = [
    "WorkloadSpec",
    "WorkloadPhase",
    "SnippetTraceGenerator",
    "MIBENCH_APPS",
    "CORTEX_APPS",
    "PARSEC_APPS",
    "ALL_CPU_APPS",
    "get_workload",
    "workloads_by_suite",
    "table2_workloads",
    "figure4_workloads",
    "GRAPHICS_APPS",
    "get_graphics_workload",
    "ApplicationSequence",
    "build_online_sequence",
]
