"""Application sequences for the online-adaptation experiments.

Figure 3 of the paper runs a *sequence* of Cortex and PARSEC applications on
the board after the policies were trained offline on Mi-Bench, and tracks how
quickly each policy converges to the Oracle.  This module builds such
sequences (ordered lists of snippets with per-application boundaries) and
records the wall-clock offsets needed to plot accuracy against time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.soc.snippet import Snippet
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import CORTEX_APPS, PARSEC_APPS


@dataclass
class ApplicationSequence:
    """An ordered snippet trace spanning several applications."""

    snippets: List[Snippet] = field(default_factory=list)
    boundaries: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.snippets)

    def applications(self) -> List[str]:
        """Application names in first-appearance order."""
        seen: List[str] = []
        for snippet in self.snippets:
            if snippet.application not in seen:
                seen.append(snippet.application)
        return seen

    def application_slice(self, application: str) -> List[Snippet]:
        return [s for s in self.snippets if s.application == application]


def build_online_sequence(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    snippet_factor: float = 1.0,
    seed: SeedLike = 0,
) -> ApplicationSequence:
    """Build the Figure-3 style online sequence.

    By default the sequence contains every CortexSuite application followed by
    the PARSEC applications — i.e. only workloads that were *not* part of the
    offline training set — mirroring the paper's setup where the initial
    policies must adapt at runtime.
    """
    if specs is None:
        specs = list(CORTEX_APPS.values()) + list(PARSEC_APPS.values())
    rng = make_rng(seed)
    generator = SnippetTraceGenerator(seed=rng)
    sequence = ApplicationSequence()
    for spec in specs:
        scaled = spec.scaled(snippet_factor) if snippet_factor != 1.0 else spec
        sequence.boundaries[spec.name] = len(sequence.snippets)
        sequence.snippets.extend(generator.generate(scaled, rng=rng))
    return sequence
