"""Snippet trace generation from workload specifications.

Given a :class:`~repro.workloads.spec.WorkloadSpec`, the generator samples the
per-snippet characteristics around each phase's mean with the configured
jitter, producing the snippet sequence the SoC simulator executes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.soc.snippet import Snippet, SnippetCharacteristics
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.spec import WorkloadPhase, WorkloadSpec


def _clip(value: float, low: float, high: float) -> float:
    return float(min(max(value, low), high))


class SnippetTraceGenerator:
    """Expands workload specs into concrete snippet traces."""

    def __init__(self, seed: SeedLike = None) -> None:
        self.rng = make_rng(seed)

    def _sample_characteristics(
        self, phase: WorkloadPhase, rng: np.random.Generator
    ) -> SnippetCharacteristics:
        base = phase.characteristics
        jitter = phase.jitter

        def wobble(value: float) -> float:
            if jitter == 0.0:
                return value
            return value * float(np.exp(rng.normal(0.0, jitter)))

        return SnippetCharacteristics(
            memory_intensity=max(0.0, wobble(base.memory_intensity)),
            memory_access_rate=_clip(wobble(base.memory_access_rate), 0.0, 1.0),
            external_request_rate=_clip(wobble(base.external_request_rate), 0.0, 1.0),
            branch_misprediction_mpki=max(0.0, wobble(base.branch_misprediction_mpki)),
            ilp_factor=_clip(wobble(base.ilp_factor), 0.05, 1.0),
            parallel_fraction=_clip(base.parallel_fraction, 0.0, 1.0),
            thread_count=base.thread_count,
            big_fraction=_clip(base.big_fraction, 0.0, 1.0),
        )

    def generate(
        self,
        spec: WorkloadSpec,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Snippet]:
        """Generate the snippet trace for one application run."""
        local_rng = rng if rng is not None else self.rng
        snippets: List[Snippet] = []
        index = 0
        for phase in spec.phases:
            for _ in range(phase.n_snippets):
                characteristics = self._sample_characteristics(phase, local_rng)
                snippets.append(
                    Snippet(
                        application=spec.name,
                        index=index,
                        n_instructions=spec.snippet_instructions,
                        characteristics=characteristics,
                    )
                )
                index += 1
        return snippets

    def generate_many(
        self,
        specs,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Snippet]:
        """Concatenate traces for several applications, in the given order."""
        local_rng = rng if rng is not None else self.rng
        trace: List[Snippet] = []
        for spec in specs:
            trace.extend(self.generate(spec, rng=local_rng))
        return trace
