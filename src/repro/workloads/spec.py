"""Workload specifications.

A :class:`WorkloadSpec` describes one benchmark application as a sequence of
*phases*; each phase specifies mean snippet characteristics and how much they
jitter from snippet to snippet.  The trace generator expands a spec into a
concrete list of :class:`~repro.soc.snippet.Snippet` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.soc.snippet import DEFAULT_SNIPPET_INSTRUCTIONS, SnippetCharacteristics


@dataclass(frozen=True)
class WorkloadPhase:
    """One execution phase of an application.

    Parameters
    ----------
    characteristics:
        Mean snippet characteristics during this phase.
    n_snippets:
        Number of snippets the phase spans.
    jitter:
        Relative standard deviation applied to the continuous characteristics
        when sampling individual snippets (phase-internal variation).
    """

    characteristics: SnippetCharacteristics
    n_snippets: int = 10
    jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.n_snippets < 1:
            raise ValueError("n_snippets must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


@dataclass(frozen=True)
class WorkloadSpec:
    """A named benchmark application described by its phases."""

    name: str
    suite: str
    phases: tuple
    snippet_instructions: float = DEFAULT_SNIPPET_INSTRUCTIONS
    description: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"workload {self.name!r} needs at least one phase")
        if self.snippet_instructions <= 0:
            raise ValueError("snippet_instructions must be positive")

    @property
    def n_snippets(self) -> int:
        return sum(phase.n_snippets for phase in self.phases)

    @property
    def total_instructions(self) -> float:
        return self.n_snippets * self.snippet_instructions

    def mean_characteristics(self) -> SnippetCharacteristics:
        """Snippet-count-weighted mean characteristics across phases."""
        total = self.n_snippets
        acc: Dict[str, float] = {}
        for phase in self.phases:
            weight = phase.n_snippets / total
            for key, value in phase.characteristics.as_dict().items():
                acc[key] = acc.get(key, 0.0) + weight * value
        return SnippetCharacteristics(
            memory_intensity=acc["memory_intensity"],
            memory_access_rate=min(1.0, acc["memory_access_rate"]),
            external_request_rate=min(1.0, acc["external_request_rate"]),
            branch_misprediction_mpki=acc["branch_misprediction_mpki"],
            ilp_factor=min(1.0, acc["ilp_factor"]),
            parallel_fraction=min(1.0, acc["parallel_fraction"]),
            thread_count=max(1, int(round(acc["thread_count"]))),
            big_fraction=min(1.0, acc["big_fraction"]),
        )

    def scaled(self, snippet_factor: float) -> "WorkloadSpec":
        """Return a copy with each phase length scaled by ``snippet_factor``.

        Used to shorten traces in unit tests and to lengthen them for the
        long-running online sequences of Figure 3.
        """
        if snippet_factor <= 0:
            raise ValueError("snippet_factor must be positive")
        new_phases = tuple(
            WorkloadPhase(
                characteristics=phase.characteristics,
                n_snippets=max(1, int(round(phase.n_snippets * snippet_factor))),
                jitter=phase.jitter,
            )
            for phase in self.phases
        )
        return replace(self, phases=new_phases)


def single_phase_workload(
    name: str,
    suite: str,
    characteristics: SnippetCharacteristics,
    n_snippets: int = 20,
    jitter: float = 0.05,
    snippet_instructions: float = DEFAULT_SNIPPET_INSTRUCTIONS,
    description: str = "",
) -> WorkloadSpec:
    """Convenience constructor for workloads with a single steady phase."""
    return WorkloadSpec(
        name=name,
        suite=suite,
        phases=(WorkloadPhase(characteristics, n_snippets=n_snippets, jitter=jitter),),
        snippet_instructions=snippet_instructions,
        description=description,
    )
