"""Benchmark-suite presets for the CPU (big.LITTLE) experiments.

The paper trains its IL policies on Mi-Bench applications and evaluates
generalisation on CortexSuite and PARSEC applications (Table II, Figs 3-4).
Each application below is a synthetic stand-in parameterised to reflect the
qualitative behaviour of the real benchmark:

* **Mi-Bench** — small embedded kernels: single-threaded, mostly compute
  bound, low-to-moderate memory intensity.
* **CortexSuite** — data-analytics / vision kernels: single-threaded but much
  more memory intensive with lower ILP.
* **PARSEC** — multi-threaded (Blackscholes with 2 and 4 threads): high
  parallel fraction, high big-cluster utilisation.

The distribution shift between the suites is what produces the paper's
offline-IL generalisation gap; the exact MPKI/ILP numbers are synthetic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.soc.snippet import SnippetCharacteristics
from repro.workloads.spec import WorkloadPhase, WorkloadSpec, single_phase_workload


def _mibench(name: str, mpki: float, ilp: float, branch_mpki: float,
             access_rate: float, n_snippets: int = 24,
             description: str = "") -> WorkloadSpec:
    chars = SnippetCharacteristics(
        memory_intensity=mpki,
        memory_access_rate=access_rate,
        external_request_rate=0.55,
        branch_misprediction_mpki=branch_mpki,
        ilp_factor=ilp,
        parallel_fraction=0.05,
        thread_count=1,
        big_fraction=0.9,
    )
    return single_phase_workload(
        name, "mibench", chars, n_snippets=n_snippets, jitter=0.06,
        description=description,
    )


def _cortex(name: str, mpki: float, ilp: float, branch_mpki: float,
            access_rate: float, n_snippets: int = 24,
            description: str = "") -> WorkloadSpec:
    chars = SnippetCharacteristics(
        memory_intensity=mpki,
        memory_access_rate=access_rate,
        external_request_rate=0.75,
        branch_misprediction_mpki=branch_mpki,
        ilp_factor=ilp,
        parallel_fraction=0.1,
        thread_count=1,
        big_fraction=0.92,
    )
    return single_phase_workload(
        name, "cortex", chars, n_snippets=n_snippets, jitter=0.08,
        description=description,
    )


def _parsec_blackscholes(threads: int, n_snippets: int = 24) -> WorkloadSpec:
    """Blackscholes: embarrassingly parallel option-pricing kernel."""
    chars = SnippetCharacteristics(
        memory_intensity=3.0,
        memory_access_rate=0.38,
        external_request_rate=0.6,
        branch_misprediction_mpki=1.5,
        ilp_factor=0.85,
        parallel_fraction=0.95,
        thread_count=threads,
        big_fraction=0.95,
    )
    return single_phase_workload(
        f"blackscholes-{threads}t", "parsec", chars, n_snippets=n_snippets,
        jitter=0.05,
        description=f"PARSEC blackscholes with {threads} threads",
    )


#: Mi-Bench applications (training suite).  MPKI / ILP / branch-MPKI values are
#: synthetic but ordered to reflect the relative behaviour of the kernels.
MIBENCH_APPS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        _mibench("bml", mpki=0.8, ilp=0.90, branch_mpki=2.0, access_rate=0.25,
                 description="basicmath-large: mostly ALU/FPU bound"),
        _mibench("dijkstra", mpki=3.5, ilp=0.70, branch_mpki=6.0, access_rate=0.35,
                 description="graph shortest path: pointer chasing"),
        _mibench("fft", mpki=2.2, ilp=0.85, branch_mpki=1.5, access_rate=0.40,
                 description="fast Fourier transform"),
        _mibench("patricia", mpki=4.5, ilp=0.65, branch_mpki=8.0, access_rate=0.38,
                 description="trie lookups: branchy, cache sensitive"),
        _mibench("qsort", mpki=3.0, ilp=0.75, branch_mpki=9.0, access_rate=0.42,
                 description="quick sort of strings"),
        _mibench("sha", mpki=0.5, ilp=0.92, branch_mpki=1.0, access_rate=0.22,
                 description="SHA hashing: compute bound"),
        _mibench("blowfish", mpki=0.7, ilp=0.88, branch_mpki=1.2, access_rate=0.28,
                 description="Blowfish encryption"),
        _mibench("stringsearch", mpki=1.8, ilp=0.80, branch_mpki=7.0, access_rate=0.33,
                 description="string searching"),
        _mibench("adpcm", mpki=0.4, ilp=0.90, branch_mpki=2.5, access_rate=0.20,
                 description="ADPCM audio codec"),
        _mibench("aes", mpki=1.0, ilp=0.87, branch_mpki=1.0, access_rate=0.30,
                 description="AES encryption"),
    ]
}

#: CortexSuite applications (unseen at design time).
CORTEX_APPS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        _cortex("kmeans", mpki=18.0, ilp=0.45, branch_mpki=3.0, access_rate=0.55,
                description="k-means clustering: streaming, memory bound"),
        _cortex("spectral", mpki=9.0, ilp=0.55, branch_mpki=2.5, access_rate=0.48,
                description="spectral clustering"),
        _cortex("motion-estimation", mpki=11.0, ilp=0.50, branch_mpki=4.0,
                access_rate=0.52, description="motion estimation"),
        _cortex("pca", mpki=13.0, ilp=0.52, branch_mpki=2.0, access_rate=0.50,
                description="principal component analysis"),
    ]
}

#: PARSEC applications (unseen at design time, multi-threaded).
PARSEC_APPS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        _parsec_blackscholes(threads=2),
        _parsec_blackscholes(threads=4),
    ]
}

#: All sixteen applications used in Figure 4, keyed by name.
ALL_CPU_APPS: Dict[str, WorkloadSpec] = {
    **MIBENCH_APPS,
    **CORTEX_APPS,
    **PARSEC_APPS,
}

#: Application subset reported in Table II (name -> paper's column label).
TABLE2_APP_LABELS: Dict[str, str] = {
    "bml": "BML",
    "dijkstra": "Djkstr",
    "fft": "FFT",
    "qsort": "Qsort",
    "motion-estimation": "MtnEst",
    "spectral": "Spctrl",
    "kmeans": "Kmns",
    "blackscholes-2t": "Blkschls2T",
    "blackscholes-4t": "Blkschls4T",
}

#: Application order used on the x-axis of Figure 4.
FIGURE4_APP_ORDER: List[str] = [
    "bml", "dijkstra", "fft", "patricia", "qsort", "sha", "blowfish",
    "stringsearch", "adpcm", "aes",
    "kmeans", "spectral", "motion-estimation", "pca",
    "blackscholes-2t", "blackscholes-4t",
]


def get_workload(name: str) -> WorkloadSpec:
    """Return the preset workload spec for ``name`` (case insensitive)."""
    key = name.lower()
    if key not in ALL_CPU_APPS:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(ALL_CPU_APPS)}"
        )
    return ALL_CPU_APPS[key]


def workloads_by_suite(suite: str) -> List[WorkloadSpec]:
    """Return all workloads belonging to ``suite`` (mibench/cortex/parsec)."""
    suite = suite.lower()
    table = {"mibench": MIBENCH_APPS, "cortex": CORTEX_APPS, "parsec": PARSEC_APPS}
    if suite not in table:
        raise KeyError(f"unknown suite {suite!r}; available: {sorted(table)}")
    return list(table[suite].values())


def table2_workloads() -> List[WorkloadSpec]:
    """Workloads evaluated in Table II, in the paper's column order."""
    return [ALL_CPU_APPS[name] for name in TABLE2_APP_LABELS]


def figure4_workloads() -> List[WorkloadSpec]:
    """All sixteen workloads of Figure 4, in the paper's x-axis order."""
    return [ALL_CPU_APPS[name] for name in FIGURE4_APP_ORDER]


def training_workloads() -> List[WorkloadSpec]:
    """The design-time (offline) training set: the Mi-Bench suite."""
    return list(MIBENCH_APPS.values())


def unseen_workloads() -> List[WorkloadSpec]:
    """Applications unknown at design time: CortexSuite and PARSEC."""
    return list(CORTEX_APPS.values()) + list(PARSEC_APPS.values())
