"""Graphics benchmark presets for the GPU / ENMPC experiments.

Figure 5 of the paper evaluates explicit NMPC on ten mobile graphics
benchmarks running on an Intel Core i5 integrated GPU; Figure 2 uses the
Nenamark2 benchmark on a Minnowboard MAX.  Real game traces are not
available, so each benchmark is a synthetic frame trace parameterised by:

* ``load`` — mean frame work as a fraction of the GPU's capacity per frame at
  the maximal configuration (frequency and slices), which controls how much
  DVFS/slice-gating slack exists;
* ``variation`` — frame-to-frame lognormal jitter, which controls how much a
  reactive baseline governor must over-provision;
* ``phase_amplitude`` — slow scene-level load modulation.

The paper's savings spread (5-58 % across apps) comes from exactly these two
axes: light and/or highly variable games leave the most room for predictive,
multi-knob control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.gpu.frames import FrameTrace, generate_frame_trace
from repro.gpu.gpu import GPUSpec, default_integrated_gpu
from repro.utils.rng import SeedLike, derive_seed, stable_name_id


@dataclass(frozen=True)
class GraphicsBenchmarkSpec:
    """Parameters of one synthetic graphics benchmark."""

    name: str
    load: float
    variation: float
    phase_amplitude: float
    target_fps: float = 30.0
    memory_bytes_per_cycle: float = 0.8
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.load < 1.0:
            raise ValueError("load must be in (0, 1)")
        if self.variation < 0 or self.phase_amplitude < 0:
            raise ValueError("variation parameters must be non-negative")
        if self.target_fps <= 0:
            raise ValueError("target_fps must be positive")


#: The ten benchmarks reported in Figure 5, in the paper's x-axis order.
GRAPHICS_APPS: Dict[str, GraphicsBenchmarkSpec] = {
    spec.name: spec
    for spec in [
        GraphicsBenchmarkSpec("3dmark-icestorm", load=0.62, variation=0.10,
                              phase_amplitude=0.20,
                              description="synthetic GPU benchmark, heavy scenes"),
        GraphicsBenchmarkSpec("angrybirds", load=0.16, variation=0.04,
                              phase_amplitude=0.05,
                              description="casual 2D game, light and steady"),
        GraphicsBenchmarkSpec("angrybots", load=0.38, variation=0.14,
                              phase_amplitude=0.15,
                              description="3D shooter demo, moderate load"),
        GraphicsBenchmarkSpec("epiccitadel", load=0.48, variation=0.12,
                              phase_amplitude=0.18,
                              description="Unreal engine fly-through"),
        GraphicsBenchmarkSpec("fruitninja", load=0.22, variation=0.10,
                              phase_amplitude=0.10,
                              description="casual game with particle bursts"),
        GraphicsBenchmarkSpec("gfxbench-trex", load=0.72, variation=0.08,
                              phase_amplitude=0.15,
                              description="heavy GPU benchmark scene"),
        GraphicsBenchmarkSpec("junglerun", load=0.30, variation=0.16,
                              phase_amplitude=0.12,
                              description="endless runner, bursty"),
        GraphicsBenchmarkSpec("sharkdash", load=0.26, variation=0.22,
                              phase_amplitude=0.20,
                              description="casual game, highly variable scenes"),
        GraphicsBenchmarkSpec("thechase", load=0.55, variation=0.12,
                              phase_amplitude=0.18,
                              description="cinematic chase demo"),
        GraphicsBenchmarkSpec("vendettamark", load=0.42, variation=0.15,
                              phase_amplitude=0.16,
                              description="3D benchmark scene"),
    ]
}

#: Frame-time modelling benchmark of Figure 2 (Nenamark2 on Minnowboard MAX).
NENAMARK2 = GraphicsBenchmarkSpec(
    "nenamark2", load=0.35, variation=0.025, phase_amplitude=0.25,
    target_fps=60.0, description="OpenGL ES benchmark used for Fig. 2",
)


def figure5_benchmark_order() -> List[str]:
    """Benchmark names in the order of the Figure 5 x-axis."""
    return list(GRAPHICS_APPS.keys())


def get_graphics_workload(
    name: str,
    gpu: GPUSpec = None,
    n_frames: int = 600,
    seed: SeedLike = 0,
) -> FrameTrace:
    """Build the frame trace for graphics benchmark ``name``.

    ``load`` is interpreted relative to the capacity per frame of ``gpu`` at
    its maximal configuration, so the same spec produces consistent pressure
    on differently sized GPUs.
    """
    key = name.lower()
    specs = dict(GRAPHICS_APPS)
    specs[NENAMARK2.name] = NENAMARK2
    if key not in specs:
        raise KeyError(f"unknown graphics benchmark {name!r}; "
                       f"available: {sorted(specs)}")
    spec = specs[key]
    if gpu is None:
        gpu = default_integrated_gpu()
    # Interpret ``load`` as the fraction of the frame deadline the GPU is busy
    # at its maximal configuration, including the memory phase, so that a
    # load below ~0.85 always leaves headroom for jitter and scene peaks.
    seconds_per_cycle = (
        1.0 / gpu.max_throughput_cycles_per_s()
        + spec.memory_bytes_per_cycle / (gpu.memory_bandwidth_gbps * 1e9)
    )
    mean_work = spec.load / spec.target_fps / seconds_per_cycle
    return generate_frame_trace(
        name=spec.name,
        n_frames=n_frames,
        mean_work_cycles=mean_work,
        work_variation=spec.variation,
        phase_period=120,
        phase_amplitude=spec.phase_amplitude,
        memory_bytes_per_cycle=spec.memory_bytes_per_cycle,
        target_fps=spec.target_fps,
        # The benchmark's stream id must be process independent: built-in
        # str hashing is randomised per interpreter (PYTHONHASHSEED), which
        # made "identical" traces differ across worker processes and runs.
        seed=derive_seed(seed, [stable_name_id(key) % (2**16)]),
        description=spec.description,
    )
