"""repro — Online Adaptive Learning for Runtime Resource Management of Heterogeneous SoCs.

A from-scratch Python reproduction of Mandal et al., DAC 2020.  The package is
organised as:

* :mod:`repro.core` — the online-adaptive DRM framework (Oracle, offline IL,
  model-guided online IL, evaluation runner).
* :mod:`repro.models` — online analytical models (RLS power/performance,
  STAFF, thermal, skin temperature, sensitivities).
* :mod:`repro.control` — DRM controllers (RL baselines, NMPC, explicit NMPC,
  multi-rate GPU control; classic governors live in :mod:`repro.soc.governors`).
* :mod:`repro.soc`, :mod:`repro.gpu`, :mod:`repro.noc` — simulated hardware
  substrates standing in for the paper's boards.
* :mod:`repro.workloads` — synthetic benchmark-suite workload generators.
* :mod:`repro.ml` — numpy-only machine-learning building blocks.
* :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from repro.core.framework import OnlineLearningFramework, run_policy_on_snippets
from repro.core.objectives import ENERGY, EDP, PERFORMANCE, PPW
from repro.soc.platform import odroid_xu3_like, generic_big_little
from repro.gpu.gpu import default_integrated_gpu

__version__ = "1.0.0"

__all__ = [
    "OnlineLearningFramework",
    "run_policy_on_snippets",
    "ENERGY",
    "EDP",
    "PERFORMANCE",
    "PPW",
    "odroid_xu3_like",
    "generic_big_little",
    "default_integrated_gpu",
    "__version__",
]
