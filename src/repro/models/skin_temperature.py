"""Skin-temperature estimation from internal sensors (Sec. III-A).

Skin temperature cannot be measured directly in production devices, so it is
estimated from internal thermal sensors and power readings.  The estimator
below combines an online-learned linear regression (RLS over sensor readings)
with an optional Kalman smoother driven by a thermal RC model — mirroring the
machine-learning skin-temperature models of [26, 27].
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.rls import RecursiveLeastSquares
from repro.models.kalman import KalmanFilter


class SkinTemperatureEstimator:
    """Online skin-temperature estimator.

    Parameters
    ----------
    n_sensors:
        Number of internal sensor inputs (junction temperatures, power, ...).
    forgetting_factor:
        RLS forgetting factor; values below one let the estimator track slow
        changes in device thermal coupling (cases, docks, ambient changes).
    use_smoother:
        When True, a scalar Kalman filter smooths the regression output using
        a first-order skin thermal model (skin temperature changes slowly).
    smoothing_pole:
        Pole of the first-order skin dynamics used by the smoother (0-1;
        closer to one = slower skin response = heavier smoothing).
    """

    def __init__(
        self,
        n_sensors: int,
        forgetting_factor: float = 0.995,
        use_smoother: bool = True,
        smoothing_pole: float = 0.9,
        measurement_noise: float = 0.25,
        process_noise: float = 0.05,
    ) -> None:
        if n_sensors < 1:
            raise ValueError("n_sensors must be >= 1")
        if not 0.0 < smoothing_pole < 1.0:
            raise ValueError("smoothing_pole must be in (0, 1)")
        self.n_sensors = int(n_sensors)
        self.rls = RecursiveLeastSquares(
            n_features=self.n_sensors,
            forgetting_factor=forgetting_factor,
            delta=50.0,
            fit_intercept=True,
        )
        self.use_smoother = bool(use_smoother)
        self._smoother: Optional[KalmanFilter] = None
        self._smoothing_pole = float(smoothing_pole)
        self._measurement_noise = float(measurement_noise)
        self._process_noise = float(process_noise)

    def _ensure_smoother(self, initial_estimate: float) -> KalmanFilter:
        if self._smoother is None:
            self._smoother = KalmanFilter(
                transition=np.array([[self._smoothing_pole]]),
                observation=np.array([[1.0]]),
                process_noise=np.array([[self._process_noise]]),
                measurement_noise=np.array([[self._measurement_noise]]),
                control=np.array([[1.0 - self._smoothing_pole]]),
                initial_state=np.array([initial_estimate]),
            )
        return self._smoother

    def update(self, sensor_readings: Sequence[float],
               measured_skin_temperature_c: float) -> float:
        """Consume a labelled sample (available during characterisation).

        Returns the a-priori prediction error, the quantity the paper's online
        techniques monitor to decide how aggressively to adapt.
        """
        readings = np.asarray(sensor_readings, dtype=float).ravel()
        if readings.shape[0] != self.n_sensors:
            raise ValueError(f"expected {self.n_sensors} sensor readings")
        return self.rls.update(readings, float(measured_skin_temperature_c))

    def estimate(self, sensor_readings: Sequence[float]) -> float:
        """Estimate the current skin temperature from internal sensors."""
        readings = np.asarray(sensor_readings, dtype=float).ravel()
        if readings.shape[0] != self.n_sensors:
            raise ValueError(f"expected {self.n_sensors} sensor readings")
        raw_estimate = self.rls.predict_one(readings)
        if not self.use_smoother:
            return float(raw_estimate)
        smoother = self._ensure_smoother(raw_estimate)
        smoother.predict(control_input=np.array([raw_estimate]))
        smoothed = smoother.update(np.array([raw_estimate]))
        return float(smoothed[0])

    @property
    def n_updates(self) -> int:
        return self.rls.n_updates
