"""Thermal RC network model and power-temperature stability analysis.

Implements the thermal modelling blocks of Sec. III-A:

* :class:`ThermalRCModel` — a discrete-time linear thermal model
  ``T[k+1] = A T[k] + B P[k] + c`` relating node temperatures (per cluster,
  skin, ...) to component powers, usable both for simulation and for
  predicting the temperature at a future instant under a hypothesised power.
* :class:`ThermalFixedPointAnalysis` — computes the thermal fixed point (the
  steady-state temperature reached under a constant average power), checks
  its existence/stability conditions (spectral radius of ``A`` below one) and
  derives the sustainable power budget before a temperature limit is violated,
  following the power-temperature stability analysis of [24, 25].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


class ThermalRCModel:
    """Discrete-time linear thermal model of an SoC.

    Parameters
    ----------
    state_matrix:
        ``A`` (n x n) — inter-node heat-transfer dynamics; a physically
        meaningful model has a spectral radius strictly below one.
    input_matrix:
        ``B`` (n x m) — temperature rise per watt of each power source.
    ambient_vector:
        ``c`` (n,) — constant term pulling each node towards the ambient
        temperature; for a model expressed in absolute Kelvin/Celsius this is
        ``(I - A) @ T_ambient``.
    node_names / source_names:
        Optional labels for reporting.
    """

    def __init__(
        self,
        state_matrix: np.ndarray,
        input_matrix: np.ndarray,
        ambient_vector: np.ndarray,
        node_names: Optional[Sequence[str]] = None,
        source_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.state_matrix = np.atleast_2d(np.asarray(state_matrix, dtype=float))
        self.input_matrix = np.atleast_2d(np.asarray(input_matrix, dtype=float))
        self.ambient_vector = np.asarray(ambient_vector, dtype=float).ravel()
        n = self.state_matrix.shape[0]
        if self.state_matrix.shape != (n, n):
            raise ValueError("state matrix must be square")
        if self.input_matrix.shape[0] != n:
            raise ValueError("input matrix row count must match state dimension")
        if self.ambient_vector.shape[0] != n:
            raise ValueError("ambient vector length must match state dimension")
        self.node_names = list(node_names) if node_names else [f"node{i}" for i in range(n)]
        self.source_names = (
            list(source_names) if source_names
            else [f"source{j}" for j in range(self.input_matrix.shape[1])]
        )
        if len(self.node_names) != n:
            raise ValueError("node_names length mismatch")
        if len(self.source_names) != self.input_matrix.shape[1]:
            raise ValueError("source_names length mismatch")

    @property
    def n_nodes(self) -> int:
        return self.state_matrix.shape[0]

    @property
    def n_sources(self) -> int:
        return self.input_matrix.shape[1]

    def step(self, temperatures: np.ndarray, powers: np.ndarray) -> np.ndarray:
        """One discrete time step of the thermal dynamics."""
        t = np.asarray(temperatures, dtype=float).ravel()
        p = np.asarray(powers, dtype=float).ravel()
        if t.shape[0] != self.n_nodes or p.shape[0] != self.n_sources:
            raise ValueError("temperature/power vector dimension mismatch")
        return self.state_matrix @ t + self.input_matrix @ p + self.ambient_vector

    def simulate(self, initial_temperatures: np.ndarray,
                 power_trajectory: np.ndarray) -> np.ndarray:
        """Simulate the model over a power trajectory (steps x sources).

        Returns an array of shape (steps + 1, nodes) including the initial
        temperature.
        """
        powers = np.atleast_2d(np.asarray(power_trajectory, dtype=float))
        if powers.shape[1] != self.n_sources:
            raise ValueError("power trajectory has wrong number of sources")
        temperatures = np.zeros((powers.shape[0] + 1, self.n_nodes))
        temperatures[0] = np.asarray(initial_temperatures, dtype=float).ravel()
        for k in range(powers.shape[0]):
            temperatures[k + 1] = self.step(temperatures[k], powers[k])
        return temperatures

    def predict_future(self, temperatures: np.ndarray, powers: np.ndarray,
                       horizon: int) -> np.ndarray:
        """Predict the temperature ``horizon`` steps ahead under constant power."""
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        state = np.asarray(temperatures, dtype=float).ravel()
        for _ in range(horizon):
            state = self.step(state, powers)
        return state


@dataclass
class FixedPointResult:
    """Thermal fixed point and its stability properties."""

    temperatures: np.ndarray
    spectral_radius: float
    stable: bool

    def max_temperature(self) -> float:
        return float(np.max(self.temperatures))


class ThermalFixedPointAnalysis:
    """Fixed-point existence, stability and power-budget computations."""

    def __init__(self, model: ThermalRCModel) -> None:
        self.model = model

    def spectral_radius(self) -> float:
        eigenvalues = np.linalg.eigvals(self.model.state_matrix)
        return float(np.max(np.abs(eigenvalues)))

    def is_stable(self) -> bool:
        """Necessary and sufficient stability condition: rho(A) < 1."""
        return self.spectral_radius() < 1.0

    def fixed_point(self, powers: np.ndarray) -> FixedPointResult:
        """Steady-state temperature under constant ``powers``.

        The fixed point solves ``T* = A T* + B P + c``; it exists and is
        unique when ``I - A`` is nonsingular and is attracting when the
        spectral radius of ``A`` is below one.
        """
        p = np.asarray(powers, dtype=float).ravel()
        if p.shape[0] != self.model.n_sources:
            raise ValueError("power vector dimension mismatch")
        identity = np.eye(self.model.n_nodes)
        matrix = identity - self.model.state_matrix
        rhs = self.model.input_matrix @ p + self.model.ambient_vector
        temperatures = np.linalg.solve(matrix, rhs)
        radius = self.spectral_radius()
        return FixedPointResult(
            temperatures=temperatures,
            spectral_radius=radius,
            stable=radius < 1.0,
        )

    def power_budget(self, temperature_limit_c: float,
                     power_direction: Optional[np.ndarray] = None,
                     upper_bound_w: float = 100.0,
                     tolerance: float = 1e-4) -> float:
        """Maximum sustainable total power before the limit is violated.

        Scales ``power_direction`` (default: uniform across sources) by a
        scalar found with bisection such that the hottest node of the fixed
        point equals ``temperature_limit_c``.  The returned value is the total
        power (sum over sources) of the scaled vector — the budget DRM
        techniques use to throttle frequency/core counts (Sec. III-A).
        """
        direction = (
            np.asarray(power_direction, dtype=float).ravel()
            if power_direction is not None
            else np.ones(self.model.n_sources)
        )
        if direction.shape[0] != self.model.n_sources:
            raise ValueError("power_direction dimension mismatch")
        if np.all(direction <= 0):
            raise ValueError("power_direction must have a positive component")
        idle = self.fixed_point(np.zeros(self.model.n_sources))
        if idle.max_temperature() > temperature_limit_c:
            return 0.0
        low, high = 0.0, float(upper_bound_w)
        while high - low > tolerance:
            mid = 0.5 * (low + high)
            result = self.fixed_point(direction / direction.sum() * mid)
            if result.max_temperature() <= temperature_limit_c:
                low = mid
            else:
                high = mid
        return low


def two_node_mobile_thermal_model(
    ambient_c: float = 25.0,
    coupling: float = 0.02,
    cpu_self: float = 0.85,
    skin_self: float = 0.95,
    cpu_rise_per_w: float = 1.2,
    skin_rise_per_w: float = 0.10,
) -> ThermalRCModel:
    """A small two-node (junction + skin) mobile thermal model.

    The defaults give a stable model where the junction responds quickly to
    CPU power and the skin integrates slowly — the behaviour that makes skin
    temperature hard to control reactively and motivates predictive models.
    """
    state = np.array([[cpu_self, coupling], [coupling, skin_self]])
    inputs = np.array([[cpu_rise_per_w], [skin_rise_per_w]])
    ambient = (np.eye(2) - state) @ np.array([ambient_c, ambient_c])
    return ThermalRCModel(
        state_matrix=state,
        input_matrix=inputs,
        ambient_vector=ambient,
        node_names=["junction", "skin"],
        source_names=["cpu_power"],
    )
