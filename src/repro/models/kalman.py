"""Discrete-time Kalman filter.

Used by the skin-temperature observer (Sec. III-A) and by the sensor-selection
algorithm of [28], which chooses the sensor subset minimising the steady-state
Kalman estimation error.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class KalmanFilter:
    """Standard linear Kalman filter ``x' = A x + B u + w``, ``y = C x + v``."""

    def __init__(
        self,
        transition: np.ndarray,
        observation: np.ndarray,
        process_noise: np.ndarray,
        measurement_noise: np.ndarray,
        control: Optional[np.ndarray] = None,
        initial_state: Optional[np.ndarray] = None,
        initial_covariance: Optional[np.ndarray] = None,
    ) -> None:
        self.transition = np.atleast_2d(np.asarray(transition, dtype=float))
        self.observation = np.atleast_2d(np.asarray(observation, dtype=float))
        self.process_noise = np.atleast_2d(np.asarray(process_noise, dtype=float))
        self.measurement_noise = np.atleast_2d(
            np.asarray(measurement_noise, dtype=float)
        )
        n = self.transition.shape[0]
        m = self.observation.shape[0]
        if self.transition.shape != (n, n):
            raise ValueError("transition matrix must be square")
        if self.observation.shape[1] != n:
            raise ValueError("observation matrix has wrong number of columns")
        if self.process_noise.shape != (n, n):
            raise ValueError("process noise covariance must be n x n")
        if self.measurement_noise.shape != (m, m):
            raise ValueError("measurement noise covariance must be m x m")
        self.control = (
            np.atleast_2d(np.asarray(control, dtype=float)) if control is not None else None
        )
        if self.control is not None and self.control.shape[0] != n:
            raise ValueError("control matrix has wrong number of rows")
        self.state = (
            np.asarray(initial_state, dtype=float).ravel()
            if initial_state is not None
            else np.zeros(n)
        )
        if self.state.shape[0] != n:
            raise ValueError("initial state has wrong dimension")
        self.covariance = (
            np.atleast_2d(np.asarray(initial_covariance, dtype=float))
            if initial_covariance is not None
            else np.eye(n)
        )
        if self.covariance.shape != (n, n):
            raise ValueError("initial covariance must be n x n")

    @property
    def n_states(self) -> int:
        return self.transition.shape[0]

    def predict(self, control_input: Optional[np.ndarray] = None) -> np.ndarray:
        """Time update; returns the predicted state."""
        self.state = self.transition @ self.state
        if self.control is not None and control_input is not None:
            self.state = self.state + self.control @ np.asarray(control_input,
                                                                dtype=float).ravel()
        self.covariance = (
            self.transition @ self.covariance @ self.transition.T + self.process_noise
        )
        return self.state.copy()

    def update(self, measurement: np.ndarray) -> np.ndarray:
        """Measurement update; returns the corrected state estimate."""
        y = np.asarray(measurement, dtype=float).ravel()
        innovation = y - self.observation @ self.state
        innovation_cov = (
            self.observation @ self.covariance @ self.observation.T
            + self.measurement_noise
        )
        gain = self.covariance @ self.observation.T @ np.linalg.inv(innovation_cov)
        self.state = self.state + gain @ innovation
        identity = np.eye(self.n_states)
        self.covariance = (identity - gain @ self.observation) @ self.covariance
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        return self.state.copy()

    def step(self, measurement: np.ndarray,
             control_input: Optional[np.ndarray] = None) -> np.ndarray:
        """Predict then update in one call."""
        self.predict(control_input)
        return self.update(measurement)


def steady_state_covariance(
    transition: np.ndarray,
    observation: np.ndarray,
    process_noise: np.ndarray,
    measurement_noise: np.ndarray,
    iterations: int = 500,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Iterate the Riccati recursion to (approximate) steady state.

    Returns the a-posteriori error covariance, which the greedy sensor
    selection algorithm uses as its quality metric.
    """
    a = np.atleast_2d(np.asarray(transition, dtype=float))
    c = np.atleast_2d(np.asarray(observation, dtype=float))
    q = np.atleast_2d(np.asarray(process_noise, dtype=float))
    r = np.atleast_2d(np.asarray(measurement_noise, dtype=float))
    n = a.shape[0]
    p = np.eye(n)
    for _ in range(iterations):
        prior = a @ p @ a.T + q
        innovation_cov = c @ prior @ c.T + r
        gain = prior @ c.T @ np.linalg.inv(innovation_cov)
        new_p = (np.eye(n) - gain @ c) @ prior
        new_p = 0.5 * (new_p + new_p.T)
        if np.max(np.abs(new_p - p)) < tolerance:
            return new_p
        p = new_p
    return p
