"""Online CPU power model.

Total chip power is modelled as a linear function of physically motivated
features built from the Table-I counters and the active configuration:
per-cluster ``V^2 f x utilisation`` terms (dynamic power), per-cluster voltage
terms (leakage), the external-memory request rate (DRAM power) and a constant
(uncore).  The weights are learned online with recursive least squares so the
model adapts to the running application, as described in Sec. III-A/III-B.

The same feature map is reused by the online-IL runtime Oracle to *predict*
the power of candidate configurations: following the paper, the counter
values observed at the current configuration are reused while the
configuration-dependent terms (V, f) are recomputed for each candidate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.rls import RecursiveLeastSquares, rls_update_fleet
from repro.soc.configuration import SoCConfiguration, SpaceArrays
from repro.soc.counters import PerformanceCounters
from repro.soc.platform import PlatformSpec


class PowerModelFeatures:
    """Feature map from (counters, configuration) to power-model inputs.

    When predicting the power of a *candidate* configuration from counters
    observed at a different (reference) configuration, the busy-core count is
    estimated from the reference utilisation and capped by the candidate's
    active cores — mirroring the paper's "reuse the observed counters"
    approximation while staying physically sensible for core gating.
    """

    FEATURE_NAMES = [
        "big_v2f_busy_cores",
        "little_v2f_busy_cores",
        "big_voltage_active_cores",
        "little_voltage_active_cores",
        "external_requests_per_us",
    ]

    def __init__(self, platform: PlatformSpec) -> None:
        self.platform = platform
        # Per-OPP ``V^2 f / 1e9`` prefixes, filled with the same scalar
        # arithmetic as :meth:`build` so batch features gather bitwise-equal
        # values (one table per cluster, built lazily).
        self._v2f_tables: dict = {}

    @property
    def n_features(self) -> int:
        return len(self.FEATURE_NAMES)

    def _v2f_over_1e9(self, cluster: str) -> np.ndarray:
        table = self._v2f_tables.get(cluster)
        if table is None:
            spec = self.platform.cluster(cluster)
            table = np.array(
                [opp.voltage_v**2 * opp.frequency_hz / 1e9 for opp in spec.opps],
                dtype=float,
            )
            self._v2f_tables[cluster] = table
        return table

    @staticmethod
    def _busy_cores(utilization: float, reference_cores: int,
                    candidate_cores: int) -> float:
        busy = utilization * reference_cores
        return float(min(busy, candidate_cores))

    def build(self, counters: PerformanceCounters, config: SoCConfiguration,
              reference_config: Optional[SoCConfiguration] = None) -> np.ndarray:
        """Feature vector for ``config`` given counters from ``reference_config``.

        ``reference_config`` defaults to ``config`` (the case during model
        updates, where the counters were measured at that configuration).
        """
        reference = reference_config or config
        big = self.platform.cluster("big")
        little = self.platform.cluster("little")
        big_opp = big.opps[config.opp_index("big")]
        little_opp = little.opps[config.opp_index("little")]
        time_s = max(counters.execution_time_s, 1e-9)
        external_rate_per_us = (
            counters.noncache_external_memory_requests / time_s / 1e6
        )
        big_busy = self._busy_cores(
            counters.big_cluster_utilization, reference.cores("big"),
            config.cores("big"),
        )
        little_busy = self._busy_cores(
            counters.little_cluster_utilization, reference.cores("little"),
            config.cores("little"),
        )
        return np.array(
            [
                big_opp.voltage_v**2 * big_opp.frequency_hz / 1e9 * big_busy,
                little_opp.voltage_v**2 * little_opp.frequency_hz / 1e9 * little_busy,
                big_opp.voltage_v * config.cores("big"),
                little_opp.voltage_v * config.cores("little"),
                external_rate_per_us,
            ],
            dtype=float,
        )

    def build_batch(
        self,
        counters: PerformanceCounters,
        candidates: SpaceArrays,
        reference_config: Optional[SoCConfiguration] = None,
    ) -> np.ndarray:
        """Feature matrix for many candidate configurations at once.

        Vectorized twin of :meth:`build`: rows correspond to the rows of
        ``candidates`` (a whole-space :meth:`~repro.soc.configuration
        .ConfigurationSpace.soa_view` or a memoised
        :meth:`~repro.soc.configuration.ConfigurationSpace
        .neighborhood_view`'s arrays), with counters observed at
        ``reference_config``.  When ``reference_config`` is ``None`` each
        candidate acts as its own reference, matching :meth:`build`'s
        default.  Configuration-dependent terms come from the
        struct-of-arrays rows and per-OPP prefix tables, so every row
        equals the corresponding :meth:`build` vector bitwise.
        """
        big = candidates.cluster("big")
        little = candidates.cluster("little")
        big_cores = big.cores_f
        little_cores = little.cores_f
        time_s = max(counters.execution_time_s, 1e-9)
        external_rate_per_us = (
            counters.noncache_external_memory_requests / time_s / 1e6
        )
        if reference_config is not None:
            big_ref_cores = float(reference_config.cores("big"))
            little_ref_cores = float(reference_config.cores("little"))
        else:
            big_ref_cores = big_cores
            little_ref_cores = little_cores
        big_busy = np.minimum(
            counters.big_cluster_utilization * big_ref_cores, big_cores
        )
        little_busy = np.minimum(
            counters.little_cluster_utilization * little_ref_cores, little_cores
        )
        features = np.empty((big_cores.shape[0], len(self.FEATURE_NAMES)))
        features[:, 0] = self._v2f_over_1e9("big")[big.opp_index] * big_busy
        features[:, 1] = (
            self._v2f_over_1e9("little")[little.opp_index] * little_busy
        )
        features[:, 2] = big.voltage_v * big_cores
        features[:, 3] = little.voltage_v * little_cores
        features[:, 4] = external_rate_per_us
        return features


class CpuPowerModel:
    """Online RLS model of total chip power (watts)."""

    def __init__(
        self,
        platform: PlatformSpec,
        forgetting_factor: float = 0.997,
        delta: float = 100.0,
        initial_weights: Optional[np.ndarray] = None,
    ) -> None:
        self.platform = platform
        self.features = PowerModelFeatures(platform)
        self.rls = RecursiveLeastSquares(
            n_features=self.features.n_features,
            forgetting_factor=forgetting_factor,
            delta=delta,
            fit_intercept=True,
            initial_weights=initial_weights,
        )

    def update(self, counters: PerformanceCounters, config: SoCConfiguration,
               measured_power_w: Optional[float] = None) -> float:
        """Consume one observation; returns the a-priori prediction error.

        ``measured_power_w`` defaults to the power recorded in the counters
        (Table I includes total chip power), matching the runtime data flow.
        """
        target = (
            measured_power_w
            if measured_power_w is not None
            else counters.total_chip_power_w
        )
        feature_vector = self.features.build(counters, config)
        return self.rls.update(feature_vector, float(target))

    def predict(self, counters: PerformanceCounters, config: SoCConfiguration,
                reference_config: Optional[SoCConfiguration] = None) -> float:
        """Predicted power at ``config`` reusing counters from ``reference_config``."""
        feature_vector = self.features.build(counters, config, reference_config)
        return max(0.0, self.rls.predict_one(feature_vector))

    def predict_batch(
        self,
        counters: PerformanceCounters,
        candidates: SpaceArrays,
        reference_config: Optional[SoCConfiguration] = None,
    ) -> np.ndarray:
        """Predicted power of many candidate configurations in one matmul.

        The feature matrix is built over the candidates' struct-of-arrays
        rows (bitwise equal to per-candidate :meth:`predict` features); the
        RLS prediction itself is a single ``(n_candidates, n_features)``
        matrix product, equivalent to the scalar path up to BLAS
        summation-order round-off.
        """
        features = self.features.build_batch(counters, candidates,
                                             reference_config)
        return np.maximum(0.0, self.rls.predict_batch(features))

    @property
    def n_updates(self) -> int:
        return self.rls.n_updates

    def warm_start(self, observations) -> None:
        """Bootstrap from (counters, config) pairs collected at design time."""
        for counters, config in observations:
            self.update(counters, config)


def fleet_update_power_models(
    models: Sequence[CpuPowerModel],
    counters_list: Sequence[PerformanceCounters],
    candidates: SpaceArrays,
    rls_state: Optional[dict] = None,
) -> np.ndarray:
    """One :meth:`CpuPowerModel.update` per device as a single stacked pass.

    ``candidates`` holds each device's *own executed configuration* as one
    struct-of-arrays row (a :meth:`~repro.soc.configuration
    .ConfigurationSpace.soa_view` gathered at the per-device configuration
    indices), so every feature is built with the same arithmetic as the
    scalar :meth:`PowerModelFeatures.build` (reference == candidate) and
    the N rank-1 RLS updates collapse into one
    :func:`~repro.ml.rls.rls_update_fleet` call — bitwise identical to the
    per-device loop.  The caller guarantees every model's platform carries
    the same OPP values as the space the candidate rows came from (the
    fleet adoption check); the shared per-OPP prefix tables are then
    bitwise interchangeable across models.  ``rls_state`` (a caller-kept
    dict) lets :func:`~repro.ml.rls.rls_update_fleet` reuse its stacked
    weight/precision tensors across lockstep steps.  Returns the a-priori
    errors.
    """
    features_map = models[0].features
    big = candidates.cluster("big")
    little = candidates.cluster("little")
    big_utilization = np.array(
        [c.big_cluster_utilization for c in counters_list])
    little_utilization = np.array(
        [c.little_cluster_utilization for c in counters_list])
    time_s = np.maximum(
        np.array([c.execution_time_s for c in counters_list]), 1e-9)
    external = np.array(
        [c.noncache_external_memory_requests for c in counters_list])
    external_rate_per_us = external / time_s / 1e6
    big_busy = np.minimum(big_utilization * big.cores_f, big.cores_f)
    little_busy = np.minimum(
        little_utilization * little.cores_f, little.cores_f)
    features = np.empty((len(models), len(PowerModelFeatures.FEATURE_NAMES)))
    features[:, 0] = features_map._v2f_over_1e9("big")[big.opp_index] * big_busy
    features[:, 1] = (
        features_map._v2f_over_1e9("little")[little.opp_index] * little_busy
    )
    features[:, 2] = big.voltage_v * big.cores_f
    features[:, 3] = little.voltage_v * little.cores_f
    features[:, 4] = external_rate_per_us
    targets = np.array([c.total_chip_power_w for c in counters_list])
    return rls_update_fleet([model.rls for model in models], features, targets,
                            state=rls_state)
