"""STAFF: Stabilised Adaptive Forgetting Factor and online feature selection.

Section III-B cites STAFF [30]: an online learning technique that (a) adapts
the RLS forgetting factor at runtime so the model forgets quickly when the
workload changes but stays stable in steady state, and (b) selects the most
informative subset of the available performance counters online.

* :class:`StabilizedAdaptiveForgettingRLS` extends the plain RLS estimator
  with a gradient-style forgetting-factor adaptation driven by the
  normalised prediction error, clamped to a stability interval.
* :class:`OnlineFeatureSelector` maintains running correlation estimates
  between each candidate feature and the target and periodically selects the
  top-k features to feed the RLS model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.rls import RecursiveLeastSquares


class StabilizedAdaptiveForgettingRLS(RecursiveLeastSquares):
    """RLS whose forgetting factor adapts to the normalised prediction error.

    When the squared a-priori error exceeds its running average (a workload
    change), the forgetting factor is decreased towards ``min_forgetting`` so
    old data is discarded faster; when the error is small the factor relaxes
    back towards ``max_forgetting`` for low-variance steady-state estimates.
    """

    def __init__(
        self,
        n_features: int,
        initial_forgetting_factor: float = 0.95,
        min_forgetting: float = 0.85,
        max_forgetting: float = 0.999,
        adaptation_gain: float = 0.05,
        error_smoothing: float = 0.9,
        delta: float = 100.0,
        fit_intercept: bool = True,
        initial_weights: Optional[np.ndarray] = None,
    ) -> None:
        if not 0.0 < min_forgetting < max_forgetting <= 1.0:
            raise ValueError("require 0 < min_forgetting < max_forgetting <= 1")
        if not min_forgetting <= initial_forgetting_factor <= max_forgetting:
            raise ValueError("initial forgetting factor outside [min, max]")
        super().__init__(
            n_features=n_features,
            forgetting_factor=initial_forgetting_factor,
            delta=delta,
            fit_intercept=fit_intercept,
            initial_weights=initial_weights,
        )
        self.min_forgetting = float(min_forgetting)
        self.max_forgetting = float(max_forgetting)
        self.adaptation_gain = float(adaptation_gain)
        self.error_smoothing = float(error_smoothing)
        self._error_average = 0.0
        self.forgetting_history: List[float] = []

    def update(self, features: np.ndarray, target: float) -> float:
        error = super().update(features, target)
        squared_error = error * error
        if self.n_updates == 1:
            self._error_average = squared_error
        else:
            self._error_average = (
                self.error_smoothing * self._error_average
                + (1.0 - self.error_smoothing) * squared_error
            )
        # Normalised surprise: >1 means the error spiked above its average.
        surprise = squared_error / (self._error_average + 1e-12)
        adjustment = self.adaptation_gain * (surprise - 1.0)
        new_lambda = self.forgetting_factor - adjustment
        self.forgetting_factor = float(
            np.clip(new_lambda, self.min_forgetting, self.max_forgetting)
        )
        self.forgetting_history.append(self.forgetting_factor)
        return error


class OnlineFeatureSelector:
    """Online top-k feature selection by running target correlation.

    Maintains exponentially weighted first and second moments of each feature
    and of the target, plus the cross moments, and ranks features by the
    absolute value of the resulting correlation estimate.  ``selected()``
    returns the indices of the current top-k features, re-evaluated every
    ``refresh_interval`` updates so the active feature set is stable between
    refreshes (a requirement for the downstream RLS weights to be meaningful).
    """

    def __init__(
        self,
        n_candidates: int,
        k: int,
        smoothing: float = 0.98,
        refresh_interval: int = 25,
    ) -> None:
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        if not 1 <= k <= n_candidates:
            raise ValueError("k must be in [1, n_candidates]")
        if not 0.0 < smoothing < 1.0:
            raise ValueError("smoothing must be in (0, 1)")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        self.n_candidates = int(n_candidates)
        self.k = int(k)
        self.smoothing = float(smoothing)
        self.refresh_interval = int(refresh_interval)
        self._mean_x = np.zeros(n_candidates)
        self._mean_x2 = np.zeros(n_candidates)
        self._mean_y = 0.0
        self._mean_y2 = 0.0
        self._mean_xy = np.zeros(n_candidates)
        self._count = 0
        self._selected = list(range(k))

    def update(self, features: Sequence[float], target: float) -> None:
        x = np.asarray(features, dtype=float).ravel()
        if x.shape[0] != self.n_candidates:
            raise ValueError(
                f"expected {self.n_candidates} candidate features, got {x.shape[0]}"
            )
        y = float(target)
        s = self.smoothing
        if self._count == 0:
            self._mean_x = x.copy()
            self._mean_x2 = x**2
            self._mean_y = y
            self._mean_y2 = y * y
            self._mean_xy = x * y
        else:
            self._mean_x = s * self._mean_x + (1 - s) * x
            self._mean_x2 = s * self._mean_x2 + (1 - s) * x**2
            self._mean_y = s * self._mean_y + (1 - s) * y
            self._mean_y2 = s * self._mean_y2 + (1 - s) * y * y
            self._mean_xy = s * self._mean_xy + (1 - s) * x * y
        self._count += 1
        if self._count % self.refresh_interval == 0:
            self._refresh()

    def correlations(self) -> np.ndarray:
        """Current correlation estimate between each feature and the target."""
        var_x = np.maximum(self._mean_x2 - self._mean_x**2, 1e-12)
        var_y = max(self._mean_y2 - self._mean_y**2, 1e-12)
        cov = self._mean_xy - self._mean_x * self._mean_y
        return cov / np.sqrt(var_x * var_y)

    def _refresh(self) -> None:
        ranking = np.argsort(-np.abs(self.correlations()), kind="stable")
        self._selected = sorted(int(i) for i in ranking[: self.k])

    def selected(self) -> List[int]:
        """Indices of the currently selected features (sorted)."""
        return list(self._selected)

    def project(self, features: Sequence[float]) -> np.ndarray:
        """Project a candidate feature vector onto the selected subset."""
        x = np.asarray(features, dtype=float).ravel()
        return x[self._selected]
