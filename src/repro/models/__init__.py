"""Online adaptive analytical models (paper Section III).

These models characterise power, performance and temperature as functions of
runtime system states (performance counters, sensor readings) and adapt at
runtime through light-weight online learning (recursive least squares with
forgetting, adaptive forgetting factors, online feature selection).
"""

from repro.models.power import CpuPowerModel, PowerModelFeatures
from repro.models.performance import (
    CpuPerformanceModel,
    FrameTimeModel,
    PerformanceModelFeatures,
)
from repro.models.staff import StabilizedAdaptiveForgettingRLS, OnlineFeatureSelector
from repro.models.sensitivity import SensitivityModel, LearnedSensitivityModel
from repro.models.thermal import ThermalRCModel, ThermalFixedPointAnalysis
from repro.models.skin_temperature import SkinTemperatureEstimator
from repro.models.kalman import KalmanFilter
from repro.models.sensor_selection import greedy_sensor_selection

__all__ = [
    "CpuPowerModel",
    "PowerModelFeatures",
    "CpuPerformanceModel",
    "FrameTimeModel",
    "PerformanceModelFeatures",
    "StabilizedAdaptiveForgettingRLS",
    "OnlineFeatureSelector",
    "SensitivityModel",
    "LearnedSensitivityModel",
    "ThermalRCModel",
    "ThermalFixedPointAnalysis",
    "SkinTemperatureEstimator",
    "KalmanFilter",
    "greedy_sensor_selection",
]
