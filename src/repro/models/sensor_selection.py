"""Greedy sensor selection for Kalman filtering (Sec. III-A, ref. [28]).

Given a linear dynamical system and a pool of candidate sensors (rows of the
observation matrix), selecting the subset of ``k`` sensors that minimises the
steady-state Kalman estimation error is NP-hard in general; [28] analyses the
complexity and limitations of greedy algorithms for this problem.  The greedy
procedure below adds, at each step, the sensor that most reduces the trace of
the steady-state error covariance — the standard baseline the paper's skin
temperature work builds on to improve internal sensor placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.models.kalman import steady_state_covariance


@dataclass
class SensorSelectionResult:
    """Outcome of the greedy selection."""

    selected: List[int]
    error_trace: float
    trace_history: List[float]


def _covariance_trace_for(
    transition: np.ndarray,
    observation_pool: np.ndarray,
    measurement_noise_pool: np.ndarray,
    process_noise: np.ndarray,
    subset: Sequence[int],
) -> float:
    rows = list(subset)
    observation = observation_pool[rows, :]
    noise = measurement_noise_pool[np.ix_(rows, rows)]
    covariance = steady_state_covariance(
        transition, observation, process_noise, noise
    )
    return float(np.trace(covariance))


def greedy_sensor_selection(
    transition: np.ndarray,
    observation_pool: np.ndarray,
    process_noise: np.ndarray,
    measurement_noise_pool: Optional[np.ndarray] = None,
    k: int = 2,
) -> SensorSelectionResult:
    """Greedily select ``k`` sensors minimising the steady-state error trace.

    Parameters
    ----------
    transition:
        System matrix ``A`` (n x n).
    observation_pool:
        Candidate observation matrix (one row per candidate sensor).
    process_noise:
        Process noise covariance ``Q`` (n x n).
    measurement_noise_pool:
        Full measurement-noise covariance over all candidate sensors; defaults
        to identity (independent unit-variance sensors).
    k:
        Number of sensors to select (1 <= k <= number of candidates).
    """
    a = np.atleast_2d(np.asarray(transition, dtype=float))
    pool = np.atleast_2d(np.asarray(observation_pool, dtype=float))
    q = np.atleast_2d(np.asarray(process_noise, dtype=float))
    n_candidates = pool.shape[0]
    if not 1 <= k <= n_candidates:
        raise ValueError(f"k must be in [1, {n_candidates}], got {k}")
    if measurement_noise_pool is None:
        noise_pool = np.eye(n_candidates)
    else:
        noise_pool = np.atleast_2d(np.asarray(measurement_noise_pool, dtype=float))
        if noise_pool.shape != (n_candidates, n_candidates):
            raise ValueError("measurement_noise_pool has wrong shape")

    selected: List[int] = []
    trace_history: List[float] = []
    remaining = list(range(n_candidates))
    current_trace = float("inf")
    for _ in range(k):
        best_candidate = None
        best_trace = float("inf")
        for candidate in remaining:
            trace = _covariance_trace_for(
                a, pool, noise_pool, q, selected + [candidate]
            )
            if trace < best_trace:
                best_trace = trace
                best_candidate = candidate
        assert best_candidate is not None
        selected.append(best_candidate)
        remaining.remove(best_candidate)
        current_trace = best_trace
        trace_history.append(best_trace)
    return SensorSelectionResult(
        selected=selected,
        error_trace=current_trace,
        trace_history=trace_history,
    )
