"""Online performance models (Sec. III-B).

Two models are provided:

* :class:`CpuPerformanceModel` — predicts snippet execution time on the
  big.LITTLE SoC for *candidate* configurations from the counters observed at
  the current configuration.  It follows the analytical frequency-scaling
  form used by the cited GPU/CPU models [12, 30, 31]: the busy cycles
  observed at the reference configuration are split into a
  frequency-independent part and a memory-stall part that grows linearly
  with frequency (DRAM latency is constant in wall-clock time), and the
  per-cycle work is divided by the number of cores the workload can keep
  busy.  The single coupling coefficient (the effective DRAM latency seen
  per L2 miss) is learned online with recursive least squares, so the model
  adapts to the running workload while the per-snippet counters provide the
  instantaneous workload intensity.

* :class:`FrameTimeModel` — the adaptive GPU frame-time model of Figure 2:
  predicts the next frame's processing time from the previous frame's
  workload proxies (busy cycles, memory traffic) and the chosen frequency,
  updated online with (optionally adaptive-forgetting) RLS.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.rls import RecursiveLeastSquares, rls_update_fleet
from repro.models.staff import StabilizedAdaptiveForgettingRLS
from repro.soc.configuration import SoCConfiguration, SpaceArrays
from repro.soc.counters import PerformanceCounters
from repro.soc.platform import PlatformSpec


class PerformanceModelFeatures:
    """Feature helpers shared by the CPU time model.

    The class exposes the counter decompositions (per-cluster busy cycles,
    effective core counts) used both when updating the online latency
    coefficient and when predicting candidate-configuration execution times.
    """

    FEATURE_NAMES = ["l2_miss_rate_times_frequency"]

    def __init__(self, platform: PlatformSpec) -> None:
        self.platform = platform

    @property
    def n_features(self) -> int:
        return len(self.FEATURE_NAMES)

    @staticmethod
    def effective_big_cores(counters: PerformanceCounters,
                            reference_cores: int, candidate_cores: int) -> float:
        """Big cores the snippet can keep busy at the candidate configuration."""
        busy = max(counters.big_cluster_utilization * reference_cores, 1e-3)
        # The workload cannot use more cores than it has runnable threads
        # (busy cores at the reference), nor more than the candidate powers on.
        return float(max(0.25, min(busy, candidate_cores)))

    def big_frequency_ghz(self, config: SoCConfiguration) -> float:
        big = self.platform.cluster("big")
        return big.opps[config.opp_index("big")].frequency_hz / 1e9

    def little_frequency_ghz(self, config: SoCConfiguration) -> float:
        little = self.platform.cluster("little")
        return little.opps[config.opp_index("little")].frequency_hz / 1e9

    def big_busy_cycles(self, counters: PerformanceCounters,
                        reference: SoCConfiguration) -> float:
        """Big-cluster busy cycles observed at the reference configuration."""
        busy_core_seconds = (
            counters.big_cluster_utilization * reference.cores("big")
            * counters.execution_time_s
        )
        return busy_core_seconds * self.big_frequency_ghz(reference) * 1e9

    def little_busy_cycles(self, counters: PerformanceCounters,
                           reference: SoCConfiguration) -> float:
        busy_core_seconds = (
            counters.little_cluster_utilization * reference.cores("little")
            * counters.execution_time_s
        )
        return busy_core_seconds * self.little_frequency_ghz(reference) * 1e9

    def build(self, counters: PerformanceCounters, config: SoCConfiguration,
              reference_config: Optional[SoCConfiguration] = None) -> np.ndarray:
        """RLS feature vector for the latency-coefficient model."""
        instr = max(counters.instructions_retired, 1.0)
        miss_rate = counters.l2_cache_misses / instr
        return np.array([miss_rate * self.big_frequency_ghz(config)], dtype=float)


class CpuPerformanceModel:
    """Counter-scaling execution-time model with an online latency coefficient.

    Model structure (big cluster, the critical path for the workloads here)::

        cycles_big(f) = cycles_big(f_ref) + L * l2_misses * (f - f_ref)
        time_big(f)   = cycles_big(f) / (f * effective_cores)

    where ``L`` (nanoseconds of DRAM latency charged per L2 miss) is the only
    learned quantity; it is estimated online by recursive least squares from
    the observed big-cluster CPI versus the ``miss-rate x frequency`` feature,
    with exponential forgetting so it can drift with the workload's locality.
    The LITTLE-cluster time is scaled by its frequency ratio only, and the
    total predicted time is the slower of the two cluster paths.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        forgetting_factor: float = 0.995,
        delta: float = 10.0,
        initial_latency_ns: float = 80.0,
    ) -> None:
        self.platform = platform
        self.features = PerformanceModelFeatures(platform)
        self.rls = RecursiveLeastSquares(
            n_features=1,
            forgetting_factor=forgetting_factor,
            delta=delta,
            fit_intercept=True,
            initial_weights=np.array([initial_latency_ns, 0.5]),
        )
        self.initial_latency_ns = float(initial_latency_ns)

    # ------------------------------------------------------------------ #
    def latency_ns(self) -> float:
        """Current estimate of the per-miss DRAM latency (clamped positive)."""
        return float(max(self.rls.coef_[0], 0.0))

    def _observed_big_cpi(self, counters: PerformanceCounters,
                          config: SoCConfiguration) -> float:
        cycles = self.features.big_busy_cycles(counters, config)
        return cycles / max(counters.instructions_retired, 1.0)

    def update(self, counters: PerformanceCounters,
               config: SoCConfiguration) -> float:
        """Consume one observation; returns the a-priori CPI prediction error."""
        feature = self.features.build(counters, config)
        target = self._observed_big_cpi(counters, config)
        return self.rls.update(feature, target)

    def predict_time_s(self, counters: PerformanceCounters,
                       config: SoCConfiguration,
                       n_instructions: Optional[float] = None,
                       reference_config: Optional[SoCConfiguration] = None) -> float:
        """Predict the execution time of a snippet at ``config``.

        ``counters`` are the values observed at ``reference_config`` (which
        defaults to ``config``); they are reused for the candidate following
        the paper's approximation.
        """
        reference = reference_config or config
        feats = self.features
        latency_ns = self.latency_ns()

        ref_big_freq = feats.big_frequency_ghz(reference)
        cand_big_freq = feats.big_frequency_ghz(config)
        big_cycles_ref = feats.big_busy_cycles(counters, reference)
        delta_freq = cand_big_freq - ref_big_freq
        big_cycles_cand = max(
            big_cycles_ref + latency_ns * counters.l2_cache_misses * delta_freq,
            0.1 * big_cycles_ref,
        )
        effective = feats.effective_big_cores(
            counters, reference.cores("big"), config.cores("big")
        )
        big_time = big_cycles_cand / (cand_big_freq * 1e9 * effective)

        little_cycles = feats.little_busy_cycles(counters, reference)
        little_busy_cores = max(
            counters.little_cluster_utilization * reference.cores("little"), 1e-3
        )
        little_cores = min(little_busy_cores, config.cores("little"))
        little_time = little_cycles / (
            feats.little_frequency_ghz(config) * 1e9 * max(little_cores, 0.25)
        )

        predicted = max(big_time, little_time)
        if n_instructions is not None and counters.instructions_retired > 0:
            predicted *= n_instructions / counters.instructions_retired
        return float(max(predicted, 1e-9))

    def predict_time_s_batch(
        self,
        counters: PerformanceCounters,
        candidates: SpaceArrays,
        n_instructions: Optional[float] = None,
        reference_config: Optional[SoCConfiguration] = None,
    ) -> np.ndarray:
        """Predicted execution time of many candidate configurations at once.

        Vectorized twin of :meth:`predict_time_s` over the rows of
        ``candidates`` (a whole-space ``soa_view()`` or a memoised
        ``neighborhood_view()``'s arrays).  ``reference_config`` is the
        configuration the counters were observed at; it is required here
        because the batch exists precisely to reuse one observation across
        many candidates.  Every arithmetic step mirrors the scalar path's
        operation order, so the results are bitwise identical per
        candidate.
        """
        if reference_config is None:
            raise ValueError(
                "predict_time_s_batch requires reference_config (the "
                "configuration the counters were observed at)"
            )
        big = candidates.cluster("big")
        little = candidates.cluster("little")
        feats = self.features
        latency_ns = self.latency_ns()
        reference = reference_config

        ref_big_freq = feats.big_frequency_ghz(reference)
        cand_big_freq = big.frequency_ghz
        big_cycles_ref = feats.big_busy_cycles(counters, reference)
        delta_freq = cand_big_freq - ref_big_freq
        latency_misses = latency_ns * counters.l2_cache_misses
        big_cycles_cand = np.maximum(
            big_cycles_ref + latency_misses * delta_freq,
            0.1 * big_cycles_ref,
        )
        big_busy = max(
            counters.big_cluster_utilization * reference.cores("big"), 1e-3
        )
        effective = np.maximum(0.25, np.minimum(big_busy, big.cores_f))
        big_time = big_cycles_cand / (cand_big_freq * 1e9 * effective)

        little_cycles = feats.little_busy_cycles(counters, reference)
        little_busy_cores = max(
            counters.little_cluster_utilization * reference.cores("little"), 1e-3
        )
        little_cores = np.minimum(little_busy_cores, little.cores_f)
        little_time = little_cycles / (
            little.frequency_ghz * 1e9 * np.maximum(little_cores, 0.25)
        )

        predicted = np.maximum(big_time, little_time)
        if n_instructions is not None and counters.instructions_retired > 0:
            predicted = predicted * (n_instructions / counters.instructions_retired)
        return np.maximum(predicted, 1e-9)

    @property
    def n_updates(self) -> int:
        return self.rls.n_updates

    def warm_start(self, observations) -> None:
        """Bootstrap the latency coefficient from design-time observations."""
        for counters, config in observations:
            self.update(counters, config)


def fleet_update_performance_models(
    models: Sequence[CpuPerformanceModel],
    counters_list: Sequence[PerformanceCounters],
    candidates: SpaceArrays,
    rls_state: Optional[dict] = None,
) -> np.ndarray:
    """One :meth:`CpuPerformanceModel.update` per device as a stacked pass.

    ``candidates`` holds each device's executed configuration as one
    struct-of-arrays row; the per-device ``miss-rate x frequency`` feature
    and observed big-cluster CPI target are built elementwise in the scalar
    path's operation order, and the N rank-1 updates become one
    :func:`~repro.ml.rls.rls_update_fleet` call — bitwise identical to the
    per-device loop.  Same platform-equality precondition (and the same
    cross-step ``rls_state`` reuse) as
    :func:`~repro.models.power.fleet_update_power_models`.  Returns the
    a-priori CPI errors.
    """
    big = candidates.cluster("big")
    instructions = np.maximum(
        np.array([c.instructions_retired for c in counters_list]), 1.0)
    miss_rate = np.array(
        [c.l2_cache_misses for c in counters_list]) / instructions
    features = (miss_rate * big.frequency_ghz)[:, None]
    big_utilization = np.array(
        [c.big_cluster_utilization for c in counters_list])
    time_s = np.array([c.execution_time_s for c in counters_list])
    busy_core_seconds = big_utilization * big.cores_f * time_s
    cycles = busy_core_seconds * big.frequency_ghz * 1e9
    targets = cycles / instructions
    return rls_update_fleet([model.rls for model in models], features, targets,
                            state=rls_state)


class FrameTimeModel:
    """Adaptive GPU frame-time prediction model (Figure 2).

    The model predicts the processing time of the *next* frame from the
    previous frame's observed busy cycles and memory traffic together with
    the frequency (and slice count) chosen for the next frame::

        t ≈ w1 * prev_cycles / (f * s^alpha) + w2 * prev_bytes + w0

    With a scene that changes slowly relative to the frame rate this tracks
    the measured frame time within a few percent, and the forgetting factor
    lets it re-converge quickly after scene or frequency changes.
    """

    def __init__(
        self,
        forgetting_factor: float = 0.95,
        adaptive: bool = False,
        slice_scaling_alpha: float = 0.9,
        delta: float = 10.0,
    ) -> None:
        self.slice_scaling_alpha = float(slice_scaling_alpha)
        n_features = 2
        if adaptive:
            self.rls: RecursiveLeastSquares = StabilizedAdaptiveForgettingRLS(
                n_features=n_features,
                initial_forgetting_factor=forgetting_factor,
                delta=delta,
            )
        else:
            self.rls = RecursiveLeastSquares(
                n_features=n_features,
                forgetting_factor=forgetting_factor,
                delta=delta,
            )
        self.adaptive = bool(adaptive)

    def _features(self, prev_busy_cycles: float, prev_memory_bytes: float,
                  frequency_hz: float, active_slices: int) -> np.ndarray:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        throughput = frequency_hz * float(active_slices) ** self.slice_scaling_alpha
        return np.array(
            [prev_busy_cycles / throughput, prev_memory_bytes / 1e9],
            dtype=float,
        )

    def predict_frame_time_s(self, prev_busy_cycles: float,
                             prev_memory_bytes: float, frequency_hz: float,
                             active_slices: int = 1) -> float:
        features = self._features(prev_busy_cycles, prev_memory_bytes,
                                  frequency_hz, active_slices)
        return max(0.0, self.rls.predict_one(features))

    def update(self, prev_busy_cycles: float, prev_memory_bytes: float,
               frequency_hz: float, active_slices: int,
               measured_frame_time_s: float) -> float:
        """Consume one frame observation; returns the a-priori error."""
        features = self._features(prev_busy_cycles, prev_memory_bytes,
                                  frequency_hz, active_slices)
        return self.rls.update(features, float(measured_frame_time_s))

    @property
    def n_updates(self) -> int:
        return self.rls.n_updates
