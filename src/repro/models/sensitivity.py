"""Sensitivity models for predictive control (Sec. II and IV-B).

ENMPC "uses not only power and performance models ... but also models of the
sensitivity of optimisation objectives (power and performance) to changes in
control variables, such as frequency and the number of active cores".  Two
flavours are provided:

* :class:`SensitivityModel` — analytic finite-difference sensitivities on top
  of any callable objective model (used when the underlying power/performance
  models are available).
* :class:`LearnedSensitivityModel` — RLS-learned sensitivities from observed
  (Δknob, Δobjective) pairs, which is how the controller adapts to a specific
  application even when the core control algorithm stays fixed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.ml.rls import RecursiveLeastSquares

ObjectiveFn = Callable[[np.ndarray], float]


class SensitivityModel:
    """Finite-difference sensitivities of an objective to its control knobs."""

    def __init__(self, objective: ObjectiveFn, knob_names: Sequence[str],
                 relative_step: float = 0.05) -> None:
        if relative_step <= 0:
            raise ValueError("relative_step must be positive")
        self.objective = objective
        self.knob_names = list(knob_names)
        self.relative_step = float(relative_step)

    def gradient(self, knobs: np.ndarray) -> np.ndarray:
        """Central-difference gradient of the objective at ``knobs``."""
        point = np.asarray(knobs, dtype=float).ravel()
        if point.shape[0] != len(self.knob_names):
            raise ValueError(
                f"expected {len(self.knob_names)} knobs, got {point.shape[0]}"
            )
        grad = np.zeros_like(point)
        for i in range(point.shape[0]):
            step = max(abs(point[i]) * self.relative_step, 1e-9)
            forward = point.copy()
            backward = point.copy()
            forward[i] += step
            backward[i] -= step
            grad[i] = (self.objective(forward) - self.objective(backward)) / (2 * step)
        return grad

    def sensitivities(self, knobs: np.ndarray) -> Dict[str, float]:
        """Named sensitivities at ``knobs``."""
        grad = self.gradient(knobs)
        return dict(zip(self.knob_names, (float(g) for g in grad)))


class LearnedSensitivityModel:
    """Online model of objective *changes* as a function of knob changes.

    The model fits ``Δy ≈ w · Δu`` with recursive least squares over observed
    transitions, yielding per-knob sensitivities (the weights) that adapt to
    the running application.  Because the fit is on deltas, application-level
    offsets cancel and only the local response surface slope is learned.
    """

    def __init__(self, knob_names: Sequence[str],
                 forgetting_factor: float = 0.95, delta: float = 10.0) -> None:
        self.knob_names = list(knob_names)
        if not self.knob_names:
            raise ValueError("at least one knob is required")
        self.rls = RecursiveLeastSquares(
            n_features=len(self.knob_names),
            forgetting_factor=forgetting_factor,
            delta=delta,
            fit_intercept=False,
        )
        self._last_knobs: Optional[np.ndarray] = None
        self._last_objective: Optional[float] = None

    def observe(self, knobs: Sequence[float], objective: float) -> Optional[float]:
        """Consume one (knob vector, objective) observation.

        Returns the a-priori prediction error of the delta model, or ``None``
        for the first observation and for repeated identical knob settings
        (no excitation — nothing to learn from).
        """
        knob_vector = np.asarray(knobs, dtype=float).ravel()
        if knob_vector.shape[0] != len(self.knob_names):
            raise ValueError(
                f"expected {len(self.knob_names)} knobs, got {knob_vector.shape[0]}"
            )
        error: Optional[float] = None
        if self._last_knobs is not None and self._last_objective is not None:
            delta_u = knob_vector - self._last_knobs
            delta_y = float(objective) - self._last_objective
            if np.any(np.abs(delta_u) > 1e-12):
                error = self.rls.update(delta_u, delta_y)
        self._last_knobs = knob_vector
        self._last_objective = float(objective)
        return error

    def predict_delta(self, delta_knobs: Sequence[float]) -> float:
        """Predicted objective change for a knob change."""
        delta_u = np.asarray(delta_knobs, dtype=float).ravel()
        return self.rls.predict_one(delta_u)

    def sensitivities(self) -> Dict[str, float]:
        """Current per-knob sensitivities (model weights)."""
        return dict(zip(self.knob_names, (float(w) for w in self.rls.coef_)))

    @property
    def n_updates(self) -> int:
        return self.rls.n_updates
