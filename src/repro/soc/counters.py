"""Performance-counter vector collected per snippet (paper Table I).

The paper's Table I lists the data collected in each snippet:

* Instructions retired
* CPU cycles
* Branch mispredictions per core
* Level-2 cache misses
* Data memory accesses
* Non-cache external memory requests
* Total little-cluster utilisation
* Per-core big-cluster utilisation
* Total chip power consumption

The DRM policies consume these values (optionally normalised per instruction)
as their state features.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, List

import numpy as np

COUNTER_NAMES: List[str] = [
    "instructions_retired",
    "cpu_cycles",
    "branch_mispredictions",
    "l2_cache_misses",
    "data_memory_accesses",
    "noncache_external_memory_requests",
    "little_cluster_utilization",
    "big_cluster_utilization",
    "total_chip_power_w",
]

#: Derived per-instruction feature names used by the policies and models.
FEATURE_NAMES: List[str] = [
    "cycles_per_instruction",
    "branch_misses_per_kilo_instruction",
    "l2_misses_per_kilo_instruction",
    "memory_accesses_per_kilo_instruction",
    "external_requests_per_kilo_instruction",
    "little_cluster_utilization",
    "big_cluster_utilization",
    "instruction_rate_giga_per_s",
]


@dataclass
class PerformanceCounters:
    """Values of the Table-I counters for one executed snippet."""

    instructions_retired: float
    cpu_cycles: float
    branch_mispredictions: float
    l2_cache_misses: float
    data_memory_accesses: float
    noncache_external_memory_requests: float
    little_cluster_utilization: float
    big_cluster_utilization: float
    total_chip_power_w: float
    execution_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.instructions_retired <= 0:
            raise ValueError("instructions_retired must be positive")
        if self.cpu_cycles < 0:
            raise ValueError("cpu_cycles must be non-negative")
        for name in ("little_cluster_utilization", "big_cluster_utilization"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise ValueError(f"{name} must be within [0, 1], got {value}")

    @classmethod
    def _from_values(cls, values: Dict[str, float]) -> "PerformanceCounters":
        """Hot-path constructor adopting ``values`` as the instance state.

        Bypasses ``__init__``/``__post_init__`` (validation included) —
        callers guarantee a complete field dict whose values would pass
        validation (the fleet kernel's values mirror the scalar path,
        which validates the identical numbers every step).
        """
        counters = cls.__new__(cls)
        counters.__dict__ = values
        return counters

    def is_valid(self) -> bool:
        """Whether the counters are trustworthy learning/policy inputs.

        Mirrors ``__post_init__``'s physical-range validation plus a
        finiteness check over every field — the signature of injected or
        real telemetry faults (NaN dropout, saturated sensors, garbage
        gains) that must be gated out before reaching the RLS/MLP state.
        Kept allocation-free (a single summed ``isfinite`` plus scalar
        comparisons): the fleet-batched decide/observe paths call it per
        device per step.
        """
        total = (self.instructions_retired + self.cpu_cycles
                 + self.branch_mispredictions + self.l2_cache_misses
                 + self.data_memory_accesses
                 + self.noncache_external_memory_requests
                 + self.little_cluster_utilization
                 + self.big_cluster_utilization + self.total_chip_power_w
                 + self.execution_time_s)
        # Any NaN poisons the sum; a lone ±inf (or an overflowing garbage
        # gain) leaves it non-finite too.
        if not math.isfinite(total):
            return False
        if self.instructions_retired <= 0 or self.cpu_cycles < 0:
            return False
        for value in (self.little_cluster_utilization,
                      self.big_cluster_utilization):
            if not 0.0 <= value <= 1.0 + 1e-9:
                return False
        return True

    def as_dict(self) -> Dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    def as_vector(self) -> np.ndarray:
        """Raw counter vector in the canonical ``COUNTER_NAMES`` order."""
        return np.array([getattr(self, name) for name in COUNTER_NAMES], dtype=float)

    def feature_vector(self) -> np.ndarray:
        """Normalised per-instruction features used as policy/model inputs.

        Raw counters scale with snippet length, so policies use rates: CPI,
        misses per kilo-instruction, utilisations, and the instruction rate.
        """
        instr = max(self.instructions_retired, 1.0)
        kilo = instr / 1e3
        time_s = max(self.execution_time_s, 1e-9)
        return np.array(
            [
                self.cpu_cycles / instr,
                self.branch_mispredictions / kilo,
                self.l2_cache_misses / kilo,
                self.data_memory_accesses / kilo,
                self.noncache_external_memory_requests / kilo,
                self.little_cluster_utilization,
                self.big_cluster_utilization,
                instr / time_s / 1e9,
            ],
            dtype=float,
        )

    @staticmethod
    def feature_names() -> List[str]:
        return list(FEATURE_NAMES)

    @staticmethod
    def n_features() -> int:
        return len(FEATURE_NAMES)
