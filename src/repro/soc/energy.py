"""Energy accounting across a sequence of snippet executions.

The experiments compare total energy over whole applications (Table II,
Fig. 4) and over application sequences (Fig. 3), so the account keeps a
per-application and per-component breakdown alongside the running totals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.soc.simulator import SnippetResult


class EnergyAccount:
    """Accumulates energy, time and power statistics over snippet results."""

    def __init__(self) -> None:
        self.total_energy_j: float = 0.0
        self.total_time_s: float = 0.0
        self._per_application_energy: Dict[str, float] = defaultdict(float)
        self._per_application_time: Dict[str, float] = defaultdict(float)
        self._per_component_energy: Dict[str, float] = defaultdict(float)
        self._results: List[SnippetResult] = []

    def add(self, result: SnippetResult) -> None:
        self.total_energy_j += result.energy_j
        self.total_time_s += result.execution_time_s
        app = result.snippet.application
        self._per_application_energy[app] += result.energy_j
        self._per_application_time[app] += result.execution_time_s
        for component, power in result.power_breakdown_w.items():
            self._per_component_energy[component] += power * result.execution_time_s
        self._results.append(result)

    def extend(self, results) -> None:
        for result in results:
            self.add(result)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def results(self) -> List[SnippetResult]:
        return list(self._results)

    @property
    def average_power_w(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    def application_energy_j(self, application: str) -> float:
        return self._per_application_energy.get(application, 0.0)

    def application_time_s(self, application: str) -> float:
        return self._per_application_time.get(application, 0.0)

    def per_application_energy(self) -> Dict[str, float]:
        return dict(self._per_application_energy)

    def per_component_energy(self) -> Dict[str, float]:
        return dict(self._per_component_energy)

    @property
    def energy_per_instruction_nj(self) -> float:
        instructions = sum(r.snippet.n_instructions for r in self._results)
        if instructions <= 0:
            return 0.0
        return self.total_energy_j / instructions * 1e9
