"""Energy accounting across a sequence of snippet executions.

The experiments compare total energy over whole applications (Table II,
Fig. 4) and over application sequences (Fig. 3), so the account keeps a
per-application and per-component breakdown alongside the running totals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.soc.simulator import SnippetResult


class EnergyAccount:
    """Accumulates energy, time and power statistics over snippet results."""

    def __init__(self) -> None:
        self.total_energy_j: float = 0.0
        self.total_time_s: float = 0.0
        self._per_application_energy: Dict[str, float] = defaultdict(float)
        self._per_application_time: Dict[str, float] = defaultdict(float)
        # Per-component energy is derived lazily from the retained results
        # (the per-result breakdown loop was the most expensive part of
        # add(), and the decomposition is only read at reporting time).
        # The fold order on demand is identical to accumulating inside
        # add(), so the sums are bitwise unchanged.
        self._per_component_cache: Dict[str, float] = {}
        self._per_component_upto: int = 0
        self._results: List[SnippetResult] = []

    def add(self, result: SnippetResult) -> None:
        energy = result.energy_j
        time_s = result.execution_time_s
        self.total_energy_j += energy
        self.total_time_s += time_s
        app = result.snippet.application
        self._per_application_energy[app] += energy
        self._per_application_time[app] += time_s
        self._results.append(result)

    @property
    def _per_component_energy(self) -> Dict[str, float]:
        """Per-component sums, folded over results in arrival order."""
        upto = self._per_component_upto
        if upto < len(self._results):
            per_component = defaultdict(float, self._per_component_cache)
            for result in self._results[upto:]:
                time_s = result.execution_time_s
                for component, power in result.power_breakdown_w.items():
                    per_component[component] += power * time_s
            self._per_component_cache = dict(per_component)
            self._per_component_upto = len(self._results)
        return self._per_component_cache

    def extend(self, results) -> None:
        for result in results:
            self.add(result)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def results(self) -> List[SnippetResult]:
        return list(self._results)

    @property
    def average_power_w(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    def application_energy_j(self, application: str) -> float:
        return self._per_application_energy.get(application, 0.0)

    def application_time_s(self, application: str) -> float:
        return self._per_application_time.get(application, 0.0)

    def per_application_energy(self) -> Dict[str, float]:
        return dict(self._per_application_energy)

    def per_component_energy(self) -> Dict[str, float]:
        return dict(self._per_component_energy)

    @property
    def energy_per_instruction_nj(self) -> float:
        instructions = sum(r.snippet.n_instructions for r in self._results)
        if instructions <= 0:
            return 0.0
        return self.total_energy_j / instructions * 1e9
