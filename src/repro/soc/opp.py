"""Operating performance points (voltage/frequency pairs).

Each CPU cluster and the integrated GPU expose a discrete table of OPPs.
Voltage scales roughly linearly with frequency over the usable DVFS range,
which gives the classic cubic relation between frequency and dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class OperatingPoint:
    """A single voltage/frequency operating point."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage_v}")

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_hz / 1e9

    @property
    def frequency_mhz(self) -> float:
        return self.frequency_hz / 1e6


class OPPTable:
    """Ordered table of operating points (lowest frequency first)."""

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        if not points:
            raise ValueError("OPPTable requires at least one operating point")
        ordered = sorted(points, key=lambda p: p.frequency_hz)
        freqs = [p.frequency_hz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("OPPTable frequencies must be unique")
        self._points: List[OperatingPoint] = list(ordered)

    @classmethod
    def from_frequency_range(
        cls,
        min_frequency_hz: float,
        max_frequency_hz: float,
        n_levels: int,
        min_voltage_v: float = 0.9,
        max_voltage_v: float = 1.25,
    ) -> "OPPTable":
        """Build a table with linearly spaced frequencies and voltages."""
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        if min_frequency_hz <= 0 or max_frequency_hz < min_frequency_hz:
            raise ValueError("invalid frequency range")
        points = []
        for i in range(n_levels):
            fraction = i / max(1, n_levels - 1)
            freq = min_frequency_hz + fraction * (max_frequency_hz - min_frequency_hz)
            volt = min_voltage_v + fraction * (max_voltage_v - min_voltage_v)
            points.append(OperatingPoint(frequency_hz=freq, voltage_v=volt))
        return cls(points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self._points[index]

    @property
    def points(self) -> List[OperatingPoint]:
        return list(self._points)

    @property
    def min_frequency_hz(self) -> float:
        return self._points[0].frequency_hz

    @property
    def max_frequency_hz(self) -> float:
        return self._points[-1].frequency_hz

    def frequencies_hz(self) -> List[float]:
        return [p.frequency_hz for p in self._points]

    def index_of_frequency(self, frequency_hz: float) -> int:
        """Return the index of the OPP whose frequency is closest to the input."""
        best_index = 0
        best_gap = float("inf")
        for i, point in enumerate(self._points):
            gap = abs(point.frequency_hz - frequency_hz)
            if gap < best_gap:
                best_gap = gap
                best_index = i
        return best_index

    def clamp_index(self, index: int) -> int:
        """Clamp an arbitrary integer index into the valid OPP range."""
        return max(0, min(len(self._points) - 1, int(index)))
