"""Workload snippets.

Following DyPO [3] and the offline-IL works [18, 19], applications are
segmented into *workload-conservative snippets* — windows containing a fixed
number of dynamic instructions.  A snippet carries the micro-architectural
characteristics that determine how it responds to frequency, core-count and
cluster-assignment decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Default snippet length (dynamic instructions) used by the IL experiments.
DEFAULT_SNIPPET_INSTRUCTIONS: float = 20e6


@dataclass
class SnippetCharacteristics:
    """Micro-architectural characteristics of one snippet.

    Parameters
    ----------
    memory_intensity:
        L2 misses per kilo-instruction (MPKI) — the main driver of
        memory-boundedness and therefore of the optimal frequency.
    memory_access_rate:
        L1 data accesses per instruction (0-1).
    external_request_rate:
        Fraction of L2 misses that reach DRAM (non-cache external requests).
    branch_misprediction_mpki:
        Branch mispredictions per kilo-instruction.
    ilp_factor:
        Fraction of the cluster's peak IPC this snippet can sustain (0-1].
    parallel_fraction:
        Amdahl parallel fraction of the snippet (0 = fully serial).
    thread_count:
        Number of software threads the snippet exposes.
    big_fraction:
        Fraction of instructions executed on the big cluster (thread-affinity
        of the workload; the remainder runs on the LITTLE cluster).
    """

    memory_intensity: float = 2.0
    memory_access_rate: float = 0.3
    external_request_rate: float = 0.6
    branch_misprediction_mpki: float = 4.0
    ilp_factor: float = 0.8
    parallel_fraction: float = 0.1
    thread_count: int = 1
    big_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.memory_intensity < 0:
            raise ValueError("memory_intensity must be non-negative")
        if not 0.0 <= self.memory_access_rate <= 1.0:
            raise ValueError("memory_access_rate must be in [0, 1]")
        if not 0.0 <= self.external_request_rate <= 1.0:
            raise ValueError("external_request_rate must be in [0, 1]")
        if self.branch_misprediction_mpki < 0:
            raise ValueError("branch_misprediction_mpki must be non-negative")
        if not 0.0 < self.ilp_factor <= 1.0:
            raise ValueError("ilp_factor must be in (0, 1]")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if self.thread_count < 1:
            raise ValueError("thread_count must be >= 1")
        if not 0.0 <= self.big_fraction <= 1.0:
            raise ValueError("big_fraction must be in [0, 1]")

    def as_dict(self) -> Dict[str, float]:
        return {
            "memory_intensity": self.memory_intensity,
            "memory_access_rate": self.memory_access_rate,
            "external_request_rate": self.external_request_rate,
            "branch_misprediction_mpki": self.branch_misprediction_mpki,
            "ilp_factor": self.ilp_factor,
            "parallel_fraction": self.parallel_fraction,
            "thread_count": float(self.thread_count),
            "big_fraction": self.big_fraction,
        }


@dataclass
class Snippet:
    """One fixed-instruction-count window of an application."""

    application: str
    index: int
    n_instructions: float = DEFAULT_SNIPPET_INSTRUCTIONS
    characteristics: SnippetCharacteristics = field(default_factory=SnippetCharacteristics)

    def __post_init__(self) -> None:
        if self.n_instructions <= 0:
            raise ValueError("n_instructions must be positive")
        if self.index < 0:
            raise ValueError("index must be non-negative")

    @property
    def name(self) -> str:
        return f"{self.application}[{self.index}]"
