"""Platform specifications (collections of clusters plus uncore parameters).

Two factories are provided:

* :func:`odroid_xu3_like` — a big.LITTLE platform modelled after the Samsung
  Exynos 5422 in the Odroid-XU3 board used by the paper's IL experiments
  (4x A15 @ 200-2000 MHz, 4x A7 @ 200-1400 MHz, per-cluster DVFS).
* :func:`generic_big_little` — a parameterised platform for sweeps and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.soc.cluster import ClusterSpec
from repro.soc.opp import OPPTable


@dataclass
class PlatformSpec:
    """Static description of a heterogeneous SoC platform.

    Parameters
    ----------
    name:
        Platform identifier.
    clusters:
        Mapping from cluster name (``"big"``/``"little"``) to its spec.
    memory_power_w_per_gbps:
        DRAM + memory-controller power per GB/s of traffic.
    base_power_w:
        Always-on uncore/rail power (display and radios excluded).
    """

    name: str
    clusters: Dict[str, ClusterSpec]
    memory_power_w_per_gbps: float = 0.35
    base_power_w: float = 0.25

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("platform requires at least one cluster")
        if self.memory_power_w_per_gbps < 0:
            raise ValueError("memory_power_w_per_gbps must be non-negative")
        if self.base_power_w < 0:
            raise ValueError("base_power_w must be non-negative")

    @property
    def cluster_names(self) -> List[str]:
        return list(self.clusters.keys())

    def cluster(self, name: str) -> ClusterSpec:
        if name not in self.clusters:
            raise KeyError(f"unknown cluster {name!r}; have {self.cluster_names}")
        return self.clusters[name]

    @property
    def big(self) -> ClusterSpec:
        return self.cluster("big")

    @property
    def little(self) -> ClusterSpec:
        return self.cluster("little")

    def total_cores(self) -> int:
        return sum(spec.n_cores for spec in self.clusters.values())

    def content_key(self) -> tuple:
        """Content-derived, process-stable identity of this platform.

        Covers every parameter that feeds the power/performance models
        (same coverage as ``ConfigurationSpace.cache_key``), so two
        platform objects with equal content — e.g. the same spec pickled
        into another process — produce equal keys, while any model-visible
        difference (an OPP table, a coefficient) splits them.  Unlike
        ``id()``-based keys this is safe to use in fleet grouping keys and
        cross-process maps.  Clusters key in sorted-name order so dict
        insertion order cannot leak in.
        """
        clusters = []
        for name in sorted(self.clusters):
            spec = self.clusters[name]
            clusters.append((
                name,
                spec.n_cores,
                spec.ipc_peak,
                spec.capacitance_eff_f,
                spec.leakage_w_per_v,
                spec.base_cpi,
                spec.branch_penalty_cycles,
                spec.l2_miss_penalty_ns,
                tuple((opp.frequency_hz, opp.voltage_v) for opp in spec.opps),
            ))
        return (
            self.name,
            self.memory_power_w_per_gbps,
            self.base_power_w,
            tuple(clusters),
        )


def odroid_xu3_like(
    n_big_levels: int = 8,
    n_little_levels: int = 6,
) -> PlatformSpec:
    """Platform spec modelled after the Odroid-XU3 (Exynos 5422).

    The real board exposes 19 big-cluster OPPs (200 MHz - 2.0 GHz) and 13
    LITTLE-cluster OPPs (200 MHz - 1.4 GHz).  The defaults here subsample the
    DVFS range to keep the Oracle's exhaustive configuration sweep fast while
    preserving the frequency span; pass larger values to approach the full
    table.
    """
    big_opps = OPPTable.from_frequency_range(
        min_frequency_hz=600e6,
        max_frequency_hz=2000e6,
        n_levels=n_big_levels,
        min_voltage_v=0.90,
        max_voltage_v=1.30,
    )
    little_opps = OPPTable.from_frequency_range(
        min_frequency_hz=400e6,
        max_frequency_hz=1400e6,
        n_levels=n_little_levels,
        min_voltage_v=0.90,
        max_voltage_v=1.15,
    )
    big = ClusterSpec(
        name="big",
        n_cores=4,
        opps=big_opps,
        ipc_peak=2.3,
        capacitance_eff_f=1.9e-9,
        leakage_w_per_v=0.45,
        branch_penalty_cycles=15.0,
        l2_miss_penalty_ns=95.0,
    )
    little = ClusterSpec(
        name="little",
        n_cores=4,
        opps=little_opps,
        ipc_peak=1.1,
        capacitance_eff_f=0.45e-9,
        leakage_w_per_v=0.10,
        branch_penalty_cycles=8.0,
        l2_miss_penalty_ns=110.0,
    )
    return PlatformSpec(
        name="odroid-xu3-like",
        clusters={"big": big, "little": little},
        memory_power_w_per_gbps=0.35,
        base_power_w=0.30,
    )


def generic_big_little(
    n_big_cores: int = 4,
    n_little_cores: int = 4,
    n_big_levels: int = 6,
    n_little_levels: int = 4,
    big_max_frequency_hz: float = 2.4e9,
    little_max_frequency_hz: float = 1.6e9,
) -> PlatformSpec:
    """Parameterised big.LITTLE platform for tests and sweeps."""
    big_opps = OPPTable.from_frequency_range(
        min_frequency_hz=big_max_frequency_hz / 4.0,
        max_frequency_hz=big_max_frequency_hz,
        n_levels=n_big_levels,
    )
    little_opps = OPPTable.from_frequency_range(
        min_frequency_hz=little_max_frequency_hz / 4.0,
        max_frequency_hz=little_max_frequency_hz,
        n_levels=n_little_levels,
    )
    big = ClusterSpec(
        name="big",
        n_cores=n_big_cores,
        opps=big_opps,
        ipc_peak=2.5,
        capacitance_eff_f=2.0e-9,
        leakage_w_per_v=0.5,
    )
    little = ClusterSpec(
        name="little",
        n_cores=n_little_cores,
        opps=little_opps,
        ipc_peak=1.2,
        capacitance_eff_f=0.5e-9,
        leakage_w_per_v=0.12,
    )
    return PlatformSpec(
        name="generic-big-little",
        clusters={"big": big, "little": little},
    )
