"""Heterogeneous SoC simulator substrate.

The paper evaluates its IL/RL policies on an Odroid-XU3 board (Samsung Exynos
5422, 4x Cortex-A15 "big" + 4x Cortex-A7 "LITTLE", per-cluster DVFS, on-board
power sensors).  That hardware is replaced here by a counter-driven,
snippet-level simulator: applications are executed as sequences of
instruction-count snippets, and for each (snippet, configuration) pair the
simulator produces the Table-I performance counters, execution time, power
and energy with realistic frequency/voltage and memory-boundedness effects.
"""

from repro.soc.opp import OperatingPoint, OPPTable
from repro.soc.cluster import ClusterSpec
from repro.soc.platform import PlatformSpec, odroid_xu3_like, generic_big_little
from repro.soc.configuration import (
    ClusterArrays,
    ConfigurationSpace,
    NeighborhoodView,
    SoCConfiguration,
    SpaceArrays,
)
from repro.soc.counters import PerformanceCounters, COUNTER_NAMES
from repro.soc.snippet import Snippet, SnippetCharacteristics
from repro.soc.simulator import SoCBatchResult, SoCSimulator, SnippetResult
from repro.soc.energy import EnergyAccount
from repro.soc.governors import (
    Governor,
    OndemandGovernor,
    InteractiveGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)

__all__ = [
    "OperatingPoint",
    "OPPTable",
    "ClusterSpec",
    "PlatformSpec",
    "odroid_xu3_like",
    "generic_big_little",
    "SoCConfiguration",
    "ConfigurationSpace",
    "ClusterArrays",
    "SpaceArrays",
    "NeighborhoodView",
    "PerformanceCounters",
    "COUNTER_NAMES",
    "Snippet",
    "SnippetCharacteristics",
    "SoCSimulator",
    "SoCBatchResult",
    "SnippetResult",
    "EnergyAccount",
    "Governor",
    "OndemandGovernor",
    "InteractiveGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
]
