"""Classic Linux-style frequency governors.

The paper's introduction points out that "interactive and ondemand governors
increase (or decrease) operating frequency of cores when the utilisation of
the cores goes above (or below) a predefined threshold" and that these
heuristics leave considerable room for improvement.  They serve as reference
controllers in the examples and ablation benchmarks.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters


class Governor(abc.ABC):
    """Interface for utilisation-driven per-cluster frequency governors.

    Subclasses may additionally implement :meth:`decide_batch` — the
    vectorized, cross-device twin of :meth:`decide` used by the fleet
    lockstep engine.  ``decide_batch`` receives per-device utilisation and
    current-OPP-index arrays and returns the *raw* (unclamped) new OPP
    indices per cluster, exactly as the scalar rule would compute them
    before :meth:`_with_opp_indices` clamps and validates; the caller
    applies that clamp/validate step.  Implementations must be
    elementwise-exact mirrors of the scalar arithmetic so batched
    decisions stay bitwise identical to per-device ones.
    """

    def __init__(self, space: ConfigurationSpace) -> None:
        self.space = space
        self.current = space.default_configuration()

    def reset(self, configuration: Optional[SoCConfiguration] = None) -> None:
        self.current = configuration or self.space.default_configuration()

    @abc.abstractmethod
    def decide(self, counters: PerformanceCounters) -> SoCConfiguration:
        """Return the configuration to use for the next snippet."""

    def fleet_params(self) -> Tuple:
        """Parameters identifying this governor's decision rule.

        Part of the fleet batching group key: only governors of the same
        type with equal parameters may share one ``decide_batch`` call.
        """
        return ()

    def _cluster_utilization(self, counters: PerformanceCounters, cluster: str) -> float:
        if cluster == "big":
            return counters.big_cluster_utilization
        if cluster == "little":
            return counters.little_cluster_utilization
        raise KeyError(f"unknown cluster {cluster!r}")

    def _with_opp_indices(self, opp_indices: Dict[str, int]) -> SoCConfiguration:
        _, cores = self.current.as_dicts()
        clamped = {}
        for name, index in opp_indices.items():
            spec = self.space.platform.cluster(name)
            clamped[name] = spec.opps.clamp_index(index)
        config = SoCConfiguration.from_dicts(clamped, cores)
        if not self.space.contains(config):
            # Fall back to the nearest valid configuration (core counts fixed).
            config = self.space.default_configuration()
        return config


class OndemandGovernor(Governor):
    """Jump to maximum frequency above ``up_threshold``, step down when idle."""

    def __init__(self, space: ConfigurationSpace, up_threshold: float = 0.8,
                 down_threshold: float = 0.3) -> None:
        super().__init__(space)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ValueError("require 0 < down_threshold < up_threshold <= 1")
        self.up_threshold = float(up_threshold)
        self.down_threshold = float(down_threshold)

    def decide(self, counters: PerformanceCounters) -> SoCConfiguration:
        opp_indices, _ = self.current.as_dicts()
        new_indices = {}
        for name, index in opp_indices.items():
            spec = self.space.platform.cluster(name)
            utilization = self._cluster_utilization(counters, name)
            if utilization >= self.up_threshold:
                new_indices[name] = len(spec.opps) - 1
            elif utilization <= self.down_threshold:
                new_indices[name] = index - 1
            else:
                new_indices[name] = index
        self.current = self._with_opp_indices(new_indices)
        return self.current

    def fleet_params(self) -> Tuple:
        return (self.up_threshold, self.down_threshold)

    def decide_batch(self, utilization: Dict[str, np.ndarray],
                     current_indices: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`decide` rule (raw indices, caller clamps)."""
        out: Dict[str, np.ndarray] = {}
        for name, index in current_indices.items():
            spec = self.space.platform.cluster(name)
            util = utilization[name]
            out[name] = np.where(
                util >= self.up_threshold, len(spec.opps) - 1,
                np.where(util <= self.down_threshold, index - 1, index),
            )
        return out


class InteractiveGovernor(Governor):
    """Ramp frequency proportionally to utilisation with a fast-up bias."""

    def __init__(self, space: ConfigurationSpace, target_utilization: float = 0.7) -> None:
        super().__init__(space)
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        self.target_utilization = float(target_utilization)
        self._frequency_tables: Dict[str, np.ndarray] = {}

    def _frequencies(self, cluster: str) -> np.ndarray:
        table = self._frequency_tables.get(cluster)
        if table is None:
            table = np.array(
                self.space.platform.cluster(cluster).opps.frequencies_hz()
            )
            self._frequency_tables[cluster] = table
        return table

    def decide(self, counters: PerformanceCounters) -> SoCConfiguration:
        opp_indices, _ = self.current.as_dicts()
        new_indices = {}
        for name, index in opp_indices.items():
            spec = self.space.platform.cluster(name)
            utilization = self._cluster_utilization(counters, name)
            # Scale the current frequency so that utilisation would hit target.
            current_freq = spec.opps[index].frequency_hz
            desired_freq = current_freq * utilization / self.target_utilization
            desired_index = spec.opps.index_of_frequency(desired_freq)
            if desired_index > index:
                new_indices[name] = min(index + 2, desired_index)
            else:
                new_indices[name] = max(index - 1, desired_index)
        self.current = self._with_opp_indices(new_indices)
        return self.current

    def fleet_params(self) -> Tuple:
        return (self.target_utilization,)

    def decide_batch(self, utilization: Dict[str, np.ndarray],
                     current_indices: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`decide` rule (raw indices, caller clamps).

        ``index_of_frequency`` is replicated as a first-minimum ``argmin``
        over the per-OPP absolute frequency gaps — the same tie-breaking
        as the scalar loop's strict ``<`` comparison.
        """
        out: Dict[str, np.ndarray] = {}
        for name, index in current_indices.items():
            freqs = self._frequencies(name)
            desired_freq = (freqs[index] * utilization[name]
                            / self.target_utilization)
            gaps = np.abs(freqs[None, :] - desired_freq[:, None])
            desired_index = np.argmin(gaps, axis=1)
            out[name] = np.where(
                desired_index > index,
                np.minimum(index + 2, desired_index),
                np.maximum(index - 1, desired_index),
            )
        return out


class PerformanceGovernor(Governor):
    """Always run every cluster at its maximum frequency."""

    def decide(self, counters: PerformanceCounters) -> SoCConfiguration:
        opp_indices, _ = self.current.as_dicts()
        new_indices = {
            name: len(self.space.platform.cluster(name).opps) - 1
            for name in opp_indices
        }
        self.current = self._with_opp_indices(new_indices)
        return self.current

    def decide_batch(self, utilization: Dict[str, np.ndarray],
                     current_indices: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {
            name: np.full(len(index),
                          len(self.space.platform.cluster(name).opps) - 1,
                          dtype=np.intp)
            for name, index in current_indices.items()
        }


class PowersaveGovernor(Governor):
    """Always run every cluster at its minimum frequency."""

    def decide(self, counters: PerformanceCounters) -> SoCConfiguration:
        opp_indices, _ = self.current.as_dicts()
        new_indices = {name: 0 for name in opp_indices}
        self.current = self._with_opp_indices(new_indices)
        return self.current

    def decide_batch(self, utilization: Dict[str, np.ndarray],
                     current_indices: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {name: np.zeros(len(index), dtype=np.intp)
                for name, index in current_indices.items()}
