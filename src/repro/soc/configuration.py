"""SoC configurations and the discrete configuration space.

A configuration is the tuple of control-knob settings the DRM policy can
choose at each decision epoch: the OPP index of each DVFS domain and the
number of active cores per cluster.  The :class:`ConfigurationSpace`
enumerates all valid configurations of a platform (the Oracle sweeps them
exhaustively) and provides neighbourhood queries used by the online-IL
runtime Oracle and the RL action space.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.soc.platform import PlatformSpec


@dataclass(frozen=True)
class ClusterArrays:
    """Struct-of-arrays view of one cluster across every configuration.

    Each array has one element per configuration, in enumeration order.
    ``voltage_v``/``frequency_hz``/``frequency_ghz`` are the per-OPP values
    gathered through ``opp_index``; the per-OPP source tables are built with
    the same Python-scalar arithmetic as the object-level accessors, so the
    gathered values are bitwise identical to what
    ``spec.opps[config.opp_index(name)]`` would yield per configuration.
    """

    opp_index: np.ndarray      # (n,) intp
    active_cores: np.ndarray   # (n,) intp
    cores_f: np.ndarray        # (n,) float64 view of active_cores
    voltage_v: np.ndarray      # (n,) float64
    frequency_hz: np.ndarray   # (n,) float64
    frequency_ghz: np.ndarray  # (n,) float64


@dataclass(frozen=True)
class SpaceArrays:
    """Struct-of-arrays view over a set of configurations.

    Either the whole space (:meth:`ConfigurationSpace.soa_view`) or one
    memoised candidate neighbourhood
    (:meth:`ConfigurationSpace.neighborhood_view`).  Used by the vectorized
    online decision loop so that per-step candidate sweeps never touch
    :class:`SoCConfiguration` objects.
    """

    cluster_order: Tuple[str, ...]
    clusters: Dict[str, ClusterArrays]

    def cluster(self, name: str) -> ClusterArrays:
        return self.clusters[name]

    def gather(self, indices: np.ndarray) -> "SpaceArrays":
        """Row subset of this view (arrays gathered at ``indices``)."""
        clusters = {
            name: ClusterArrays(
                opp_index=arrays.opp_index[indices],
                active_cores=arrays.active_cores[indices],
                cores_f=arrays.cores_f[indices],
                voltage_v=arrays.voltage_v[indices],
                frequency_hz=arrays.frequency_hz[indices],
                frequency_ghz=arrays.frequency_ghz[indices],
            )
            for name, arrays in self.clusters.items()
        }
        return SpaceArrays(cluster_order=self.cluster_order, clusters=clusters)


@dataclass(frozen=True)
class NeighborhoodView:
    """Memoised candidate neighbourhood: index table plus gathered arrays.

    ``indices`` are configuration indices into the owning space (in
    neighbourhood enumeration order — the order the scalar reference sweeps
    candidates in); ``arrays`` holds the struct-of-arrays rows of exactly
    those candidates, pre-gathered once so the per-step decision path does
    no indexing work at all.
    """

    indices: np.ndarray
    arrays: SpaceArrays

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class SoCConfiguration:
    """One point in the SoC control space.

    ``opp_indices`` maps cluster name to the OPP (frequency) index and
    ``active_cores`` maps cluster name to the number of powered-on cores.
    Instances are immutable and hashable so they can be used as dict keys in
    Oracle tables and Q-tables.
    """

    opp_indices: Tuple[Tuple[str, int], ...]
    active_cores: Tuple[Tuple[str, int], ...]

    @classmethod
    def from_dicts(cls, opp_indices: Dict[str, int],
                   active_cores: Dict[str, int]) -> "SoCConfiguration":
        return cls(
            opp_indices=tuple(sorted(opp_indices.items())),
            active_cores=tuple(sorted(active_cores.items())),
        )

    def opp_index(self, cluster: str) -> int:
        for name, idx in self.opp_indices:
            if name == cluster:
                return idx
        raise KeyError(f"no OPP index recorded for cluster {cluster!r}")

    def cores(self, cluster: str) -> int:
        for name, count in self.active_cores:
            if name == cluster:
                return count
        raise KeyError(f"no core count recorded for cluster {cluster!r}")

    def as_dicts(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        return dict(self.opp_indices), dict(self.active_cores)

    def as_vector(self, cluster_order: Sequence[str]) -> np.ndarray:
        """Numeric encoding (OPP index then core count per cluster)."""
        values: List[float] = []
        for cluster in cluster_order:
            values.append(float(self.opp_index(cluster)))
        for cluster in cluster_order:
            values.append(float(self.cores(cluster)))
        return np.array(values, dtype=float)

    def describe(self, platform: Optional[PlatformSpec] = None) -> str:
        parts = []
        for name, idx in self.opp_indices:
            if platform is not None and name in platform.clusters:
                freq = platform.clusters[name].opps[idx].frequency_mhz
                parts.append(f"{name}:{freq:.0f}MHz")
            else:
                parts.append(f"{name}:opp{idx}")
        for name, count in self.active_cores:
            parts.append(f"{name}x{count}")
        return " ".join(parts)


class ConfigurationSpace:
    """Enumerable set of valid configurations of a platform."""

    def __init__(
        self,
        platform: PlatformSpec,
        allow_core_gating: bool = False,
        min_active_cores: int = 1,
        gated_clusters: Optional[Sequence[str]] = None,
        max_opp_indices: Optional[Dict[str, int]] = None,
    ) -> None:
        self.platform = platform
        self.allow_core_gating = bool(allow_core_gating)
        self.min_active_cores = max(1, int(min_active_cores))
        if gated_clusters is None:
            self.gated_clusters = set(platform.clusters) if self.allow_core_gating else set()
        else:
            unknown = set(gated_clusters) - set(platform.clusters)
            if unknown:
                raise KeyError(f"unknown clusters in gated_clusters: {sorted(unknown)}")
            self.gated_clusters = set(gated_clusters) if self.allow_core_gating else set()
        # Per-cluster OPP-index caps (thermal-throttling scenarios shrink the
        # space by capping the highest reachable OPP).  Caps are clamped to
        # the platform's OPP table and only stored when they actually bind.
        self.max_opp_indices: Dict[str, int] = {}
        if max_opp_indices:
            unknown = set(max_opp_indices) - set(platform.clusters)
            if unknown:
                raise KeyError(f"unknown clusters in max_opp_indices: {sorted(unknown)}")
            for name, cap in max_opp_indices.items():
                if int(cap) < 0:
                    raise ValueError(f"max_opp_indices[{name!r}] must be >= 0")
                top = len(platform.clusters[name].opps) - 1
                if int(cap) < top:
                    self.max_opp_indices[name] = int(cap)
        self.cluster_order: List[str] = sorted(platform.clusters.keys())
        self._configs: List[SoCConfiguration] = self._enumerate()
        self._index: Dict[SoCConfiguration, int] = {
            cfg: i for i, cfg in enumerate(self._configs)
        }
        self._batch_arrays: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None
        self._cache_key: Optional[Tuple] = None
        self._content_key: Optional[Tuple] = None
        self._restrictions: Dict[Tuple[Tuple[str, int], ...],
                                 "ConfigurationSpace"] = {}
        self._soa: Optional[SpaceArrays] = None
        self._opp_lookup: Optional[np.ndarray] = None
        self._default_index: Optional[int] = None
        self._neighbor_tables: Dict[Tuple[int, int, bool], np.ndarray] = {}
        self._neighbor_views: Dict[Tuple[int, int, bool], NeighborhoodView] = {}
        self._neighborhood_tables: Dict[Tuple[int, bool],
                                        Tuple[np.ndarray, np.ndarray]] = {}
        self._clamp_cache: Dict[SoCConfiguration, SoCConfiguration] = {}

    def _max_opp_index(self, cluster: str) -> int:
        """Highest reachable OPP index of ``cluster`` under the active caps."""
        top = len(self.platform.clusters[cluster].opps) - 1
        return min(top, self.max_opp_indices.get(cluster, top))

    def _enumerate(self) -> List[SoCConfiguration]:
        opp_ranges = []
        core_ranges = []
        for name in self.cluster_order:
            spec = self.platform.clusters[name]
            opp_ranges.append(range(self._max_opp_index(name) + 1))
            if name in self.gated_clusters:
                core_ranges.append(range(self.min_active_cores, spec.n_cores + 1))
            else:
                core_ranges.append([spec.n_cores])
        configs: List[SoCConfiguration] = []
        for opp_combo in product(*opp_ranges):
            for core_combo in product(*core_ranges):
                opp_map = dict(zip(self.cluster_order, opp_combo))
                core_map = dict(zip(self.cluster_order, core_combo))
                configs.append(SoCConfiguration.from_dicts(opp_map, core_map))
        return configs

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self) -> Iterator[SoCConfiguration]:
        return iter(self._configs)

    def __getitem__(self, index: int) -> SoCConfiguration:
        return self._configs[index]

    def index_of(self, config: SoCConfiguration) -> int:
        if config not in self._index:
            raise KeyError(f"configuration not in space: {config}")
        return self._index[config]

    def contains(self, config: SoCConfiguration) -> bool:
        return config in self._index

    @property
    def configurations(self) -> List[SoCConfiguration]:
        return list(self._configs)

    def default_configuration(self) -> SoCConfiguration:
        """Mid-frequency, all-cores-on configuration used as the initial state."""
        opp_map = {}
        core_map = {}
        for name in self.cluster_order:
            spec = self.platform.clusters[name]
            opp_map[name] = min(len(spec.opps) // 2, self._max_opp_index(name))
            core_map[name] = spec.n_cores
        return SoCConfiguration.from_dicts(opp_map, core_map)

    def default_index(self) -> int:
        """Index of :meth:`default_configuration` (memoised).

        The default configuration is a constant of the space; hot paths
        (the batched fleet decide's contains-fallback) use this instead of
        rebuilding and re-hashing the configuration every step.
        """
        if self._default_index is None:
            self._default_index = self.index_of(self.default_configuration())
        return self._default_index

    def restrict(
        self,
        max_opp_index: Optional[int] = None,
        max_opp_indices: Optional[Dict[str, int]] = None,
    ) -> "ConfigurationSpace":
        """Return a copy of this space with the OPP range capped per cluster.

        ``max_opp_index`` applies one cap to every cluster; ``max_opp_indices``
        sets per-cluster caps (both may be given — the tighter bound wins, and
        caps already active on this space are also kept).  This is how thermal
        throttling events shrink the reachable configuration space: the
        restricted space is a genuine :class:`ConfigurationSpace` (subset of
        this one's configurations), with its own :meth:`cache_key`, so Oracle
        entries computed against the full space are never reused for it.

        Restrictions are memoised per base space: asking for the same
        effective caps again (each policy run of a throttled scenario does)
        returns the already-enumerated space instead of re-enumerating the
        cross product; a non-binding restriction returns this space itself.
        """
        caps: Dict[str, int] = {}
        for name in self.cluster_order:
            candidates = [self._max_opp_index(name)]
            if max_opp_index is not None:
                candidates.append(int(max_opp_index))
            if max_opp_indices and name in max_opp_indices:
                candidates.append(int(max_opp_indices[name]))
            caps[name] = min(candidates)
        binding = tuple(sorted(
            (name, cap) for name, cap in caps.items()
            if cap < len(self.platform.clusters[name].opps) - 1
        ))
        if binding == tuple(sorted(self.max_opp_indices.items())):
            return self
        if binding not in self._restrictions:
            self._restrictions[binding] = ConfigurationSpace(
                self.platform,
                allow_core_gating=self.allow_core_gating,
                min_active_cores=self.min_active_cores,
                gated_clusters=(sorted(self.gated_clusters)
                                if self.allow_core_gating else None),
                max_opp_indices=caps,
            )
        return self._restrictions[binding]

    def clamp(self, config: SoCConfiguration) -> SoCConfiguration:
        """Project ``config`` onto this space (per-knob clamping).

        Used when a policy that reasons over the full space issues a decision
        while a throttling restriction is active: each cluster's OPP index is
        clamped into the allowed range and the core count into the allowed
        gating range, which always lands inside the space because the space is
        a full cross product of the per-cluster ranges.

        Results are memoised per input configuration — a throttled scenario
        clamps the same few policy decisions every step, so repeat clamps cost
        one dict lookup instead of rebuilding a configuration object.
        """
        cached = self._clamp_cache.get(config)
        if cached is not None:
            return cached
        opp_map, core_map = config.as_dicts()
        for name in self.cluster_order:
            spec = self.platform.clusters[name]
            opp_map[name] = max(0, min(opp_map.get(name, 0),
                                       self._max_opp_index(name)))
            if name in self.gated_clusters:
                core_map[name] = max(self.min_active_cores,
                                     min(core_map.get(name, spec.n_cores),
                                         spec.n_cores))
            else:
                core_map[name] = spec.n_cores
        clamped = SoCConfiguration.from_dicts(opp_map, core_map)
        if clamped not in self._index:
            raise KeyError(f"clamped configuration not in space: {clamped}")
        self._clamp_cache[config] = clamped
        return clamped

    def _enumerate_neighbor_indices(self, config: SoCConfiguration,
                                    radius: int,
                                    include_self: bool) -> np.ndarray:
        """Neighbourhood of ``config`` as configuration indices (uncached)."""
        opp_map, core_map = config.as_dicts()
        opp_options: List[List[int]] = []
        core_options: List[List[int]] = []
        for name in self.cluster_order:
            spec = self.platform.clusters[name]
            current_opp = opp_map[name]
            options = sorted(
                {spec.opps.clamp_index(current_opp + delta)
                 for delta in range(-radius, radius + 1)}
            )
            opp_options.append(options)
            current_cores = core_map[name]
            if name in self.gated_clusters:
                low = max(self.min_active_cores, current_cores - radius)
                high = min(spec.n_cores, current_cores + radius)
                core_options.append(list(range(low, high + 1)))
            else:
                core_options.append([current_cores])
        indices: List[int] = []
        for opp_combo in product(*opp_options):
            for core_combo in product(*core_options):
                candidate = SoCConfiguration.from_dicts(
                    dict(zip(self.cluster_order, opp_combo)),
                    dict(zip(self.cluster_order, core_combo)),
                )
                if not include_self and candidate == config:
                    continue
                index = self._index.get(candidate)
                if index is not None:
                    indices.append(index)
        return np.array(indices, dtype=np.intp)

    def neighbor_indices(self, index: int, radius: int = 1,
                         include_self: bool = True) -> np.ndarray:
        """Indices of the configurations within ``radius`` OPP steps.

        This is the index-table twin of :meth:`neighbors`: the neighbourhood
        of configuration ``index`` is enumerated once per ``(index, radius,
        include_self)`` and memoised, so the per-step candidate sweep of the
        online-IL runtime Oracle stops rebuilding configuration objects.  The
        returned array is cached — treat it as read-only.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        key = (int(index), int(radius), bool(include_self))
        table = self._neighbor_tables.get(key)
        if table is None:
            table = self._enumerate_neighbor_indices(
                self._configs[int(index)], radius, include_self
            )
            self._neighbor_tables[key] = table
        return table

    def neighborhood_view(self, index: int, radius: int = 1,
                          include_self: bool = True) -> NeighborhoodView:
        """Memoised :class:`NeighborhoodView` of configuration ``index``.

        Combines :meth:`neighbor_indices` with the struct-of-arrays rows of
        the candidates, gathered once per ``(index, radius, include_self)``:
        the vectorized runtime Oracle's per-step sweep reduces to pure
        elementwise arithmetic over these cached arrays.
        """
        key = (int(index), int(radius), bool(include_self))
        view = self._neighbor_views.get(key)
        if view is None:
            indices = self.neighbor_indices(index, radius, include_self)
            view = NeighborhoodView(
                indices=indices, arrays=self.soa_view().gather(indices)
            )
            self._neighbor_views[key] = view
        return view

    def neighborhood_table(self, radius: int = 1, include_self: bool = True
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Padded fleet-wide neighbour table ``(indices, lengths)``.

        ``indices`` is an ``(n_configs, max_neighborhood)`` intp array whose
        row ``i`` holds :meth:`neighbor_indices` of configuration ``i`` in
        enumeration order, padded with ``0`` past ``lengths[i]`` entries
        (mask with ``lengths`` before use).  One fancy-indexing gather of
        this table replaces per-device neighbourhood lookups in the fleet's
        segmented candidate sweep.  Memoised per ``(radius, include_self)``;
        treat the returned arrays as read-only.
        """
        key = (int(radius), bool(include_self))
        memo = self._neighborhood_tables.get(key)
        if memo is None:
            rows = [self.neighbor_indices(i, radius, include_self)
                    for i in range(len(self._configs))]
            lengths = np.fromiter((len(row) for row in rows), dtype=np.intp,
                                  count=len(rows))
            table = np.zeros((len(rows), int(lengths.max(initial=0))),
                             dtype=np.intp)
            for i, row in enumerate(rows):
                table[i, :len(row)] = row
            memo = (table, lengths)
            self._neighborhood_tables[key] = memo
        return memo

    def neighbors(self, config: SoCConfiguration, radius: int = 1,
                  include_self: bool = True) -> List[SoCConfiguration]:
        """Configurations within ``radius`` OPP steps per cluster.

        The online-IL runtime Oracle evaluates candidate configurations "in a
        local neighbourhood of the current configuration" (Sec. IV-A3); this
        method defines that neighbourhood.  Core counts are held fixed unless
        core gating is enabled, in which case +/- radius cores are included.
        Backed by the memoised :meth:`neighbor_indices` tables.
        """
        if config in self._index:
            indices = self.neighbor_indices(self._index[config], radius,
                                            include_self)
            return [self._configs[i] for i in indices]
        # A configuration outside the space (e.g. from a differently
        # restricted sibling space) still gets a correct, uncached answer.
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        indices = self._enumerate_neighbor_indices(config, radius, include_self)
        return [self._configs[i] for i in indices]

    def random_configuration(self, rng: np.random.Generator) -> SoCConfiguration:
        return self._configs[int(rng.integers(0, len(self._configs)))]

    def config_feature_matrix(self) -> np.ndarray:
        """Numeric encoding of every configuration (for surface models)."""
        return np.vstack([cfg.as_vector(self.cluster_order) for cfg in self._configs])

    def batch_index_arrays(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Per-cluster ``(opp_index, active_cores)`` arrays over the space.

        Used by the vectorized engine sweep
        (:meth:`~repro.soc.simulator.SoCSimulator.evaluate_expected_batch`);
        the space is immutable after construction, so the arrays are built
        once and cached.
        """
        if self._batch_arrays is None:
            n = len(self._configs)
            arrays: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            for name in self.cluster_order:
                opp = np.fromiter((c.opp_index(name) for c in self._configs),
                                  dtype=np.intp, count=n)
                active = np.fromiter((c.cores(name) for c in self._configs),
                                     dtype=np.intp, count=n)
                arrays[name] = (opp, active)
            self._batch_arrays = arrays
        return self._batch_arrays

    def soa_view(self) -> SpaceArrays:
        """Struct-of-arrays view of the whole space (built once, cached).

        Per cluster: the OPP index and active-core count of every
        configuration, plus the voltage and frequency of that OPP gathered
        from per-OPP tables.  The per-OPP tables are filled element by
        element with the same scalar arithmetic as the object-level
        accessors, so every gathered value is bitwise identical to its
        scalar counterpart.  The arrays are cached and shared — treat them
        as read-only.
        """
        if self._soa is None:
            index_arrays = self.batch_index_arrays()
            clusters: Dict[str, ClusterArrays] = {}
            for name in self.cluster_order:
                spec = self.platform.clusters[name]
                opp, active = index_arrays[name]
                voltage_by_opp = np.array(
                    [point.voltage_v for point in spec.opps], dtype=float
                )
                frequency_by_opp = np.array(
                    [point.frequency_hz for point in spec.opps], dtype=float
                )
                ghz_by_opp = np.array(
                    [point.frequency_hz / 1e9 for point in spec.opps],
                    dtype=float,
                )
                clusters[name] = ClusterArrays(
                    opp_index=opp,
                    active_cores=active,
                    cores_f=active.astype(float),
                    voltage_v=voltage_by_opp[opp],
                    frequency_hz=frequency_by_opp[opp],
                    frequency_ghz=ghz_by_opp[opp],
                )
            self._soa = SpaceArrays(
                cluster_order=tuple(self.cluster_order), clusters=clusters
            )
        return self._soa

    def opp_lookup_table(self) -> Optional[np.ndarray]:
        """Dense OPP-combination -> configuration-index table (non-gated only).

        One axis per cluster (in ``cluster_order``), sized by the
        *platform's full* OPP table; entry ``[i_0, ..., i_k]`` is the index
        of the configuration with those per-cluster OPP indices, or ``-1``
        when the combination lies outside this space (an active throttle
        cap).  Without core gating the OPP indices identify a
        configuration uniquely, which is what makes the table well defined;
        gated spaces return ``None``.  Used by cross-session batched
        decides (fleet lockstep) to turn vectors of per-cluster OPP
        indices into configuration indices with one fancy-indexing gather.
        Built once and cached — treat it as read-only.
        """
        if self.gated_clusters:
            return None
        if self._opp_lookup is None:
            shape = tuple(len(self.platform.clusters[name].opps)
                          for name in self.cluster_order)
            table = np.full(shape, -1, dtype=np.intp)
            for i, config in enumerate(self._configs):
                key = tuple(config.opp_index(name)
                            for name in self.cluster_order)
                table[key] = i
            self._opp_lookup = table
        return self._opp_lookup

    def cache_key(self) -> Tuple:
        """Content-derived key identifying this space (for Oracle caches).

        Includes every platform parameter that feeds the simulator's power
        and performance models, so two same-named platforms with different
        OPP tables or coefficients never share cache entries.  The active
        OPP-index caps (scenario throttling restrictions) are part of the key
        in addition to the enumerated configuration list, so a restricted
        space never aliases the full space's Oracle entries; caps are
        normalised at construction (non-binding caps are dropped), so a
        degenerate restriction that keeps every configuration keys — and
        correctly shares — exactly like the unrestricted space.
        """
        if self._cache_key is None:
            clusters = []
            for name in self.cluster_order:
                spec = self.platform.clusters[name]
                clusters.append((
                    name,
                    spec.n_cores,
                    spec.ipc_peak,
                    spec.capacitance_eff_f,
                    spec.leakage_w_per_v,
                    spec.base_cpi,
                    spec.branch_penalty_cycles,
                    spec.l2_miss_penalty_ns,
                    tuple((opp.frequency_hz, opp.voltage_v) for opp in spec.opps),
                ))
            self._cache_key = (
                self.platform.name,
                self.platform.memory_power_w_per_gbps,
                self.platform.base_power_w,
                tuple(clusters),
                tuple(sorted(self.max_opp_indices.items())),
                tuple(self._configs),
            )
        return self._cache_key

    def content_key(self) -> Tuple:
        """Content-derived, process-stable identity of this space.

        The fleet grouping layer keys batched decide/observe groups on
        this instead of ``id(space)``: ``id()`` is process-local, changes
        under pickling, and is reusable after garbage collection, so it
        silently fragments (or worse, aliases) groups the moment device
        specs cross a process boundary (sharded fleets).  Two space
        objects with equal content produce equal keys and may batch
        together — safe, because every derived structure a batched path
        touches (``_configs``, ``_index``, ``soa_view``,
        ``opp_lookup_table``, the default configuration) is a pure
        function of exactly the constructor state captured here.  The
        enumerated configuration list itself is *derived* from this state,
        so unlike :meth:`cache_key` it need not be embedded.
        """
        if self._content_key is None:
            self._content_key = (
                self.platform.content_key(),
                self.allow_core_gating,
                self.min_active_cores,
                tuple(sorted(self.gated_clusters)),
                tuple(sorted(self.max_opp_indices.items())),
            )
        return self._content_key
