"""CPU cluster specification (big or LITTLE).

A cluster groups homogeneous cores that share a DVFS domain.  The spec holds
the micro-architectural parameters needed by the snippet-level performance and
power models: peak IPC, effective switching capacitance, leakage coefficient,
and per-cluster memory-latency sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.opp import OPPTable


@dataclass
class ClusterSpec:
    """Static description of one CPU cluster.

    Parameters
    ----------
    name:
        Human readable name, e.g. ``"big"`` or ``"little"``.
    n_cores:
        Number of cores in the cluster.
    opps:
        DVFS operating-point table shared by all cores in the cluster.
    ipc_peak:
        Peak (non-stalled) instructions per cycle of a single core.
    capacitance_eff_f:
        Effective switching capacitance per core in farads; dynamic power is
        ``C_eff * V^2 * f * utilisation`` per active core.
    leakage_w_per_v:
        Leakage (static) power per powered core per volt.
    base_cpi:
        Baseline cycles per instruction at full pipeline efficiency (1/ipc_peak
        adjusted for front-end overheads).
    branch_penalty_cycles:
        Pipeline refill penalty charged per branch misprediction.
    l2_miss_penalty_ns:
        Average DRAM access latency charged per L2 miss in nanoseconds
        (converted to cycles at the current frequency, which is what produces
        the memory-boundedness "diminishing returns" with frequency).
    """

    name: str
    n_cores: int
    opps: OPPTable
    ipc_peak: float = 2.0
    capacitance_eff_f: float = 1.0e-9
    leakage_w_per_v: float = 0.15
    base_cpi: float = field(default=0.0)
    branch_penalty_cycles: float = 14.0
    l2_miss_penalty_ns: float = 80.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"cluster needs at least one core, got {self.n_cores}")
        if self.ipc_peak <= 0:
            raise ValueError(f"ipc_peak must be positive, got {self.ipc_peak}")
        if self.capacitance_eff_f <= 0:
            raise ValueError("capacitance_eff_f must be positive")
        if self.leakage_w_per_v < 0:
            raise ValueError("leakage_w_per_v must be non-negative")
        if self.base_cpi <= 0:
            self.base_cpi = 1.0 / self.ipc_peak

    @property
    def n_opp_levels(self) -> int:
        return len(self.opps)

    def dynamic_power_w(self, opp_index: int, active_cores: int,
                        utilization: float) -> float:
        """Dynamic power for ``active_cores`` cores at ``opp_index``."""
        if not 0 <= opp_index < len(self.opps):
            raise IndexError(f"opp_index {opp_index} out of range")
        active = max(0, min(self.n_cores, int(active_cores)))
        util = float(min(max(utilization, 0.0), 1.0))
        opp = self.opps[opp_index]
        return self.capacitance_eff_f * opp.voltage_v**2 * opp.frequency_hz * active * util

    def static_power_w(self, opp_index: int, powered_cores: int) -> float:
        """Leakage power for ``powered_cores`` powered-on cores."""
        if not 0 <= opp_index < len(self.opps):
            raise IndexError(f"opp_index {opp_index} out of range")
        powered = max(0, min(self.n_cores, int(powered_cores)))
        opp = self.opps[opp_index]
        return self.leakage_w_per_v * opp.voltage_v * powered
