"""Snippet-level heterogeneous SoC simulator.

The simulator plays the role of the Odroid-XU3 board in the paper: given a
workload snippet and an SoC configuration it produces execution time, power,
energy and the Table-I performance counters.

Performance model (per cluster)
-------------------------------
Cycles per instruction grow with frequency for memory-bound code because the
DRAM latency is fixed in wall-clock time::

    CPI(f) = base_cpi / ilp  +  branch_mpki/1000 * branch_penalty
             +  l2_mpki/1000 * miss_penalty_ns * f[GHz]

The snippet's instructions are split between the big and LITTLE clusters by
its ``big_fraction``; each cluster executes its share with an Amdahl speedup
limited by the number of active cores and the snippet's thread count, and the
two clusters overlap in time.

Power model
-----------
Per cluster: ``P_dyn = C_eff V^2 f * n_active * utilisation`` and
``P_leak = k_leak * V * n_powered``; plus DRAM power proportional to the
external-request bandwidth and a constant base (uncore) power.

These analytic forms are the same ones the paper's online models try to learn
from counters, which makes the learning problem realistic but solvable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.soc.configuration import SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.platform import PlatformSpec
from repro.soc.snippet import Snippet
from repro.utils.rng import make_rng

#: Bytes transferred per non-cache external memory request (cache line).
BYTES_PER_EXTERNAL_REQUEST = 64.0

#: Background (OS) utilisation floor on the LITTLE cluster.
LITTLE_BACKGROUND_UTILIZATION = 0.03


@dataclass
class SnippetResult:
    """Outcome of executing one snippet at one configuration."""

    snippet: Snippet
    configuration: SoCConfiguration
    execution_time_s: float
    energy_j: float
    average_power_w: float
    counters: PerformanceCounters
    power_breakdown_w: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def _from_values(cls, values: Dict) -> "SnippetResult":
        """Hot-path constructor adopting ``values`` as the instance state.

        Bypasses the generated ``__init__`` (and any future validation
        added to it) — callers guarantee a complete, valid field dict.
        Used by the fleet lockstep kernel, where per-device dataclass
        construction dominates the step cost.
        """
        result = cls.__new__(cls)
        result.__dict__ = values
        return result

    @property
    def energy_per_instruction_nj(self) -> float:
        return self.energy_j / self.snippet.n_instructions * 1e9

    @property
    def performance_ips(self) -> float:
        """Instructions per second achieved by this execution."""
        return self.snippet.n_instructions / self.execution_time_s

    @property
    def performance_per_watt(self) -> float:
        return self.performance_ips / max(self.average_power_w, 1e-9)

    @property
    def energy_delay_product(self) -> float:
        return self.energy_j * self.execution_time_s


@dataclass
class SoCBatchResult:
    """Struct-of-arrays outcome of one snippet swept across many configurations.

    Produced by :meth:`SoCSimulator.evaluate_expected_batch`; every array has
    one element per configuration, in the order of :attr:`configurations`.
    Values are bitwise identical to what per-configuration
    :meth:`SoCSimulator.evaluate_expected` calls would produce;
    :meth:`result_at` materialises the full :class:`SnippetResult` for one
    index on demand (the sweep itself never pays the per-object cost).
    """

    snippet: Snippet
    configurations: List[SoCConfiguration]
    execution_time_s: np.ndarray
    energy_j: np.ndarray
    average_power_w: np.ndarray
    cpu_cycles: np.ndarray
    cluster_utilization: Dict[str, np.ndarray]
    power_breakdown_w: Dict[str, np.ndarray]
    instructions_retired: float
    branch_mispredictions: float
    l2_cache_misses: float
    data_memory_accesses: float
    noncache_external_memory_requests: float

    def __len__(self) -> int:
        return len(self.configurations)

    @property
    def performance_ips(self) -> np.ndarray:
        """Instructions per second achieved at each configuration."""
        return self.snippet.n_instructions / self.execution_time_s

    @property
    def energy_delay_product(self) -> np.ndarray:
        return self.energy_j * self.execution_time_s

    def _cluster_utilization_at(self, name: str, index: int) -> float:
        if name not in self.cluster_utilization:
            return 0.0
        return float(self.cluster_utilization[name][index])

    def result_at(self, index: int) -> SnippetResult:
        """Materialise the full :class:`SnippetResult` for one configuration."""
        i = int(index)
        counters = PerformanceCounters(
            instructions_retired=self.instructions_retired,
            cpu_cycles=float(self.cpu_cycles[i]),
            branch_mispredictions=self.branch_mispredictions,
            l2_cache_misses=self.l2_cache_misses,
            data_memory_accesses=self.data_memory_accesses,
            noncache_external_memory_requests=self.noncache_external_memory_requests,
            little_cluster_utilization=self._cluster_utilization_at("little", i),
            big_cluster_utilization=self._cluster_utilization_at("big", i),
            total_chip_power_w=float(self.average_power_w[i]),
            execution_time_s=float(self.execution_time_s[i]),
        )
        return SnippetResult(
            snippet=self.snippet,
            configuration=self.configurations[i],
            execution_time_s=float(self.execution_time_s[i]),
            energy_j=float(self.energy_j[i]),
            average_power_w=float(self.average_power_w[i]),
            counters=counters,
            power_breakdown_w={k: float(v[i]) for k, v in self.power_breakdown_w.items()},
        )

    def __getitem__(self, index: int) -> SnippetResult:
        return self.result_at(index)


class SoCSimulator:
    """Counter-driven simulator of a heterogeneous big.LITTLE SoC."""

    #: :class:`~repro.core.engine.SimulationEngine` identifier.
    engine_name = "soc"

    def __init__(
        self,
        platform: PlatformSpec,
        noise_scale: float = 0.01,
        seed: Optional[int] = None,
    ) -> None:
        if noise_scale < 0:
            raise ValueError(f"noise_scale must be non-negative, got {noise_scale}")
        self.platform = platform
        self.noise_scale = float(noise_scale)
        self.rng = make_rng(seed)
        # Snippet-independent per-OPP tables used by the vectorized sweep,
        # built lazily per cluster (the platform is fixed at construction).
        self._sweep_tables: Dict[str, tuple] = {}

    # ------------------------------------------------------------------ #
    # Cluster-level helpers
    # ------------------------------------------------------------------ #
    def _cluster_cpi(self, cluster_name: str, snippet: Snippet, opp_index: int) -> float:
        spec = self.platform.cluster(cluster_name)
        opp = spec.opps[opp_index]
        chars = snippet.characteristics
        frequency_ghz = opp.frequency_hz / 1e9
        cpi = spec.base_cpi / chars.ilp_factor
        cpi += chars.branch_misprediction_mpki / 1000.0 * spec.branch_penalty_cycles
        cpi += chars.memory_intensity / 1000.0 * spec.l2_miss_penalty_ns * frequency_ghz
        return cpi

    def _cluster_time_and_work(
        self, cluster_name: str, snippet: Snippet, config: SoCConfiguration
    ) -> Dict[str, float]:
        """Return elapsed time, busy core-seconds and cycles for one cluster."""
        spec = self.platform.cluster(cluster_name)
        chars = snippet.characteristics
        opp_index = config.opp_index(cluster_name)
        active_cores = config.cores(cluster_name)
        opp = spec.opps[opp_index]
        if cluster_name == "big":
            instructions = snippet.n_instructions * chars.big_fraction
        else:
            instructions = snippet.n_instructions * (1.0 - chars.big_fraction)
        if instructions <= 0.0:
            return {
                "elapsed_s": 0.0,
                "busy_core_s": 0.0,
                "cycles": 0.0,
                "instructions": 0.0,
            }
        cpi = self._cluster_cpi(cluster_name, snippet, opp_index)
        cycles = instructions * cpi
        serial_time = cycles / opp.frequency_hz
        usable_cores = max(1, min(active_cores, chars.thread_count))
        amdahl_speedup = 1.0 / (
            (1.0 - chars.parallel_fraction) + chars.parallel_fraction / usable_cores
        )
        elapsed = serial_time / amdahl_speedup
        busy_core_seconds = serial_time  # total work is conserved across cores
        return {
            "elapsed_s": elapsed,
            "busy_core_s": busy_core_seconds,
            "cycles": cycles,
            "instructions": instructions,
        }

    def _cluster_sweep_tables(self, cluster_name: str) -> tuple:
        """Cached per-OPP arrays for one cluster (vectorized-sweep inputs).

        Returns ``(frequency_hz, frequency_ghz, dynamic_coeff, static_coeff)``
        where the power coefficients are the snippet-independent prefixes of
        :meth:`ClusterSpec.dynamic_power_w` / ``static_power_w``, computed
        with the same scalar arithmetic (and therefore the same rounding).
        """
        tables = self._sweep_tables.get(cluster_name)
        if tables is None:
            spec = self.platform.cluster(cluster_name)
            frequency_hz = np.array([opp.frequency_hz for opp in spec.opps])
            frequency_ghz = frequency_hz / 1e9
            dynamic_coeff = np.array([
                spec.capacitance_eff_f * opp.voltage_v**2 * opp.frequency_hz
                for opp in spec.opps
            ])
            static_coeff = np.array([
                spec.leakage_w_per_v * opp.voltage_v for opp in spec.opps
            ])
            tables = (frequency_hz, frequency_ghz, dynamic_coeff, static_coeff)
            self._sweep_tables[cluster_name] = tables
        return tables

    def _batch_utilization_and_power(
        self,
        opp_idx: Dict[str, np.ndarray],
        cores: Dict[str, np.ndarray],
        busy: Dict[str, np.ndarray],
        total_time: np.ndarray,
        external_requests,
        n: int,
    ):
        """Array-based utilization + power model shared by the batch kernels.

        Consumes per-cluster activity (busy core-seconds, OPP indices,
        active cores) plus the total elapsed time and external-request
        count, and returns ``(utilizations, power_breakdown, total_power)``
        with exactly the scalar :meth:`run_snippet` arithmetic per element:
        the per-OPP coefficients come from :meth:`_cluster_sweep_tables`
        and every operation mirrors the scalar order, so the results are
        bitwise identical whether the arrays span one snippet across many
        configurations (:meth:`evaluate_expected_batch`) or many
        (snippet, configuration) pairs across a device fleet
        (:func:`repro.fleet.kernels.lockstep_execute`).
        ``external_requests`` may be a scalar (one snippet) or a
        per-element array (one per pair).
        """
        cluster_names = self.platform.cluster_names
        utilizations: Dict[str, np.ndarray] = {}
        power_breakdown: Dict[str, np.ndarray] = {}
        total_power = np.full(n, self.platform.base_power_w)
        power_breakdown["base"] = np.full(n, self.platform.base_power_w)
        for name in cluster_names:
            spec = self.platform.cluster(name)
            active = np.minimum(np.maximum(cores[name], 0), spec.n_cores).astype(float)
            utilization = busy[name] / (active * total_time)
            if name == "little":
                utilization = np.minimum(
                    1.0, utilization + LITTLE_BACKGROUND_UTILIZATION
                )
            utilization = np.minimum(1.0, utilization)
            utilizations[name] = utilization
            _, _, dynamic_coeff, static_coeff = self._cluster_sweep_tables(name)
            dynamic = (
                dynamic_coeff[opp_idx[name]] * active
                * np.minimum(np.maximum(utilization, 0.0), 1.0)
            )
            static = static_coeff[opp_idx[name]] * active
            power_breakdown[f"{name}_dynamic"] = dynamic
            power_breakdown[f"{name}_static"] = static
            total_power = total_power + (dynamic + static)

        external_bytes = external_requests * BYTES_PER_EXTERNAL_REQUEST
        memory_traffic_gbps = external_bytes / total_time / 1e9
        memory_power = self.platform.memory_power_w_per_gbps * memory_traffic_gbps
        power_breakdown["memory"] = memory_power
        total_power = total_power + memory_power
        return utilizations, power_breakdown, total_power

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run_snippet(
        self,
        snippet: Snippet,
        config: SoCConfiguration,
        rng: Optional[np.random.Generator] = None,
        deterministic: bool = False,
    ) -> SnippetResult:
        """Execute ``snippet`` at ``config`` and return the full result.

        When ``deterministic`` is True (or ``noise_scale`` is zero) the result
        contains the expected values with no measurement noise; the Oracle
        construction uses this mode so that the ground-truth best
        configuration is well defined.
        """
        chars = snippet.characteristics
        per_cluster = {
            name: self._cluster_time_and_work(name, snippet, config)
            for name in self.platform.cluster_names
        }
        total_time = max(info["elapsed_s"] for info in per_cluster.values())
        if total_time <= 0.0:
            raise ValueError("snippet produced zero execution time")

        utilizations: Dict[str, float] = {}
        power_breakdown: Dict[str, float] = {}
        total_power = self.platform.base_power_w
        power_breakdown["base"] = self.platform.base_power_w
        for name, info in per_cluster.items():
            spec = self.platform.cluster(name)
            opp_index = config.opp_index(name)
            active = config.cores(name)
            utilization = info["busy_core_s"] / (active * total_time)
            if name == "little":
                utilization = min(1.0, utilization + LITTLE_BACKGROUND_UTILIZATION)
            utilization = min(1.0, utilization)
            utilizations[name] = utilization
            dynamic = spec.dynamic_power_w(opp_index, active, utilization)
            static = spec.static_power_w(opp_index, active)
            power_breakdown[f"{name}_dynamic"] = dynamic
            power_breakdown[f"{name}_static"] = static
            total_power += dynamic + static

        l2_misses = snippet.n_instructions * chars.memory_intensity / 1000.0
        external_requests = l2_misses * chars.external_request_rate
        memory_traffic_gbps = (
            external_requests * BYTES_PER_EXTERNAL_REQUEST / total_time / 1e9
        )
        memory_power = self.platform.memory_power_w_per_gbps * memory_traffic_gbps
        power_breakdown["memory"] = memory_power
        total_power += memory_power

        noise_rng = rng if rng is not None else self.rng
        if deterministic or self.noise_scale == 0.0:
            time_noise = 1.0
            power_noise = 1.0
        else:
            time_noise = float(
                np.exp(noise_rng.normal(0.0, self.noise_scale))
            )
            power_noise = float(
                np.exp(noise_rng.normal(0.0, self.noise_scale))
            )
        measured_time = total_time * time_noise
        measured_power = total_power * power_noise
        energy = measured_power * measured_time

        total_cycles = sum(info["cycles"] for info in per_cluster.values())
        counters = PerformanceCounters(
            instructions_retired=snippet.n_instructions,
            cpu_cycles=total_cycles,
            branch_mispredictions=(
                snippet.n_instructions * chars.branch_misprediction_mpki / 1000.0
            ),
            l2_cache_misses=l2_misses,
            data_memory_accesses=snippet.n_instructions * chars.memory_access_rate,
            noncache_external_memory_requests=external_requests,
            little_cluster_utilization=utilizations.get("little", 0.0),
            big_cluster_utilization=utilizations.get("big", 0.0),
            total_chip_power_w=measured_power,
            execution_time_s=measured_time,
        )
        return SnippetResult(
            snippet=snippet,
            configuration=config,
            execution_time_s=measured_time,
            energy_j=energy,
            average_power_w=measured_power,
            counters=counters,
            power_breakdown_w=power_breakdown,
        )

    def evaluate_expected(self, snippet: Snippet, config: SoCConfiguration) -> SnippetResult:
        """Noise-free evaluation used for Oracle construction and analysis."""
        return self.run_snippet(snippet, config, deterministic=True)

    def apply_noise(self, expected: SnippetResult,
                    rng: Optional[np.random.Generator] = None) -> SnippetResult:
        """Re-noise a noise-free result exactly as :meth:`run_snippet` would.

        Given the expected (deterministic) result of a snippet/configuration
        pair — e.g. a cached Oracle entry's ``best_result`` — this draws the
        same two log-normal factors in the same order as :meth:`run_snippet`
        and applies them with the same arithmetic, so the returned result
        (and the generator stream consumed) is bitwise identical to a full
        re-simulation, without re-running the per-cluster performance model.
        """
        noise_rng = rng if rng is not None else self.rng
        if self.noise_scale == 0.0:
            time_noise = 1.0
            power_noise = 1.0
        else:
            time_noise = float(
                np.exp(noise_rng.normal(0.0, self.noise_scale))
            )
            power_noise = float(
                np.exp(noise_rng.normal(0.0, self.noise_scale))
            )
        measured_time = expected.execution_time_s * time_noise
        measured_power = expected.average_power_w * power_noise
        energy = measured_power * measured_time
        base = expected.counters
        counters = PerformanceCounters(
            instructions_retired=base.instructions_retired,
            cpu_cycles=base.cpu_cycles,
            branch_mispredictions=base.branch_mispredictions,
            l2_cache_misses=base.l2_cache_misses,
            data_memory_accesses=base.data_memory_accesses,
            noncache_external_memory_requests=base.noncache_external_memory_requests,
            little_cluster_utilization=base.little_cluster_utilization,
            big_cluster_utilization=base.big_cluster_utilization,
            total_chip_power_w=measured_power,
            execution_time_s=measured_time,
        )
        return SnippetResult(
            snippet=expected.snippet,
            configuration=expected.configuration,
            execution_time_s=measured_time,
            energy_j=energy,
            average_power_w=measured_power,
            counters=counters,
            power_breakdown_w=dict(expected.power_breakdown_w),
        )

    def evaluate_expected_batch(
        self, snippet: Snippet, configurations: Iterable[SoCConfiguration]
    ) -> SoCBatchResult:
        """Noise-free evaluation of one snippet across many configurations.

        This is the vectorized twin of :meth:`evaluate_expected`: the whole
        configuration sweep is computed with NumPy array operations instead
        of one :meth:`run_snippet` call per configuration, which is what
        makes exhaustive Oracle construction fast.

        Bitwise equivalence with the scalar path is maintained by performing
        every quantity that depends only on the OPP index (CPI, serial time,
        per-OPP power coefficients) with the *same* Python-scalar arithmetic
        as :meth:`run_snippet`, and by ordering the remaining array
        operations exactly like their scalar counterparts.
        """
        configs = list(configurations)
        if not configs:
            raise ValueError("evaluate_expected_batch needs at least one configuration")
        n = len(configs)
        chars = snippet.characteristics
        cluster_names = self.platform.cluster_names

        opp_idx: Dict[str, np.ndarray] = {}
        cores: Dict[str, np.ndarray] = {}
        index_arrays = getattr(configurations, "batch_index_arrays", None)
        if index_arrays is not None:
            # A ConfigurationSpace caches its index arrays, so repeated
            # sweeps over the same space skip re-reading every config object.
            for name, (opp, active) in index_arrays().items():
                opp_idx[name] = opp
                cores[name] = active
        else:
            for name in cluster_names:
                opp_idx[name] = np.fromiter(
                    (c.opp_index(name) for c in configs), dtype=np.intp, count=n
                )
                cores[name] = np.fromiter(
                    (c.cores(name) for c in configs), dtype=np.intp, count=n
                )

        elapsed: Dict[str, np.ndarray] = {}
        busy: Dict[str, np.ndarray] = {}
        cycles: Dict[str, np.ndarray] = {}
        for name in cluster_names:
            spec = self.platform.cluster(name)
            frequency_hz, frequency_ghz, _, _ = self._cluster_sweep_tables(name)
            if name == "big":
                instructions = snippet.n_instructions * chars.big_fraction
            else:
                instructions = snippet.n_instructions * (1.0 - chars.big_fraction)
            if instructions <= 0.0:
                elapsed[name] = np.zeros(n)
                busy[name] = np.zeros(n)
                cycles[name] = np.zeros(n)
                continue
            # CPI over all OPPs in one shot; term grouping mirrors
            # _cluster_cpi exactly so the floats come out bitwise equal.
            cpi_base = spec.base_cpi / chars.ilp_factor
            cpi_base = cpi_base + (
                chars.branch_misprediction_mpki / 1000.0 * spec.branch_penalty_cycles
            )
            memory_term = chars.memory_intensity / 1000.0 * spec.l2_miss_penalty_ns
            cpi_by_opp = cpi_base + memory_term * frequency_ghz
            cycles_by_opp = instructions * cpi_by_opp
            serial_by_opp = cycles_by_opp / frequency_hz
            amdahl_by_cores = np.empty(spec.n_cores + 1)
            for c in range(spec.n_cores + 1):
                usable_cores = max(1, min(c, chars.thread_count))
                amdahl_by_cores[c] = 1.0 / (
                    (1.0 - chars.parallel_fraction)
                    + chars.parallel_fraction / usable_cores
                )
            serial_time = serial_by_opp[opp_idx[name]]
            elapsed[name] = serial_time / amdahl_by_cores[cores[name]]
            busy[name] = serial_time
            cycles[name] = cycles_by_opp[opp_idx[name]]

        total_time = elapsed[cluster_names[0]]
        for name in cluster_names[1:]:
            total_time = np.maximum(total_time, elapsed[name])
        if np.any(total_time <= 0.0):
            raise ValueError("snippet produced zero execution time")

        l2_misses = snippet.n_instructions * chars.memory_intensity / 1000.0
        external_requests = l2_misses * chars.external_request_rate
        utilizations, power_breakdown, total_power = (
            self._batch_utilization_and_power(
                opp_idx, cores, busy, total_time, external_requests, n
            )
        )

        energy = total_power * total_time
        total_cycles = np.zeros(n)
        for name in cluster_names:
            total_cycles = total_cycles + cycles[name]

        return SoCBatchResult(
            snippet=snippet,
            configurations=configs,
            execution_time_s=total_time,
            energy_j=energy,
            average_power_w=total_power,
            cpu_cycles=total_cycles,
            cluster_utilization=utilizations,
            power_breakdown_w=power_breakdown,
            instructions_retired=snippet.n_instructions,
            branch_mispredictions=(
                snippet.n_instructions * chars.branch_misprediction_mpki / 1000.0
            ),
            l2_cache_misses=l2_misses,
            data_memory_accesses=snippet.n_instructions * chars.memory_access_rate,
            noncache_external_memory_requests=external_requests,
        )

    def evaluate_batch(
        self, snippet: Snippet, configurations: Iterable[SoCConfiguration]
    ) -> SoCBatchResult:
        """:class:`~repro.core.engine.SimulationEngine` batch entry point."""
        return self.evaluate_expected_batch(snippet, configurations)

    def sweep_configurations(self, snippet: Snippet, configs) -> Dict[SoCConfiguration, SnippetResult]:
        """Evaluate one snippet across many configurations (noise-free)."""
        batch = self.evaluate_expected_batch(snippet, configs)
        return {config: batch.result_at(i)
                for i, config in enumerate(batch.configurations)}
